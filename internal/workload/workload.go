// Package workload generates the tenant pools the CloudMirror evaluation
// draws from (§5 "Simulation Setup").
//
// The paper uses two empirical datasets — component-to-component traffic
// from a bing.com datacenter (Bodík et al. [11]) and HP Public Cloud
// traces — plus a synthetic mix. Neither dataset is public, so this
// package synthesizes pools that reproduce their *published* statistics:
//
//   - bing-like: 80 tenants, mean size ≈57 VMs, largest 732 VMs, services
//     with linear/star/ring/mesh communication patterns, some with large
//     MapReduce-like intra-service demands; per-component inter-component
//     traffic fraction ≈91% on average while heavy self-loop components
//     pull the aggregate inter-component share down toward ≈40%.
//   - hpcloud-like: smaller tenants with more hose-like structure.
//   - synthetic mix: three-tier web services and MapReduce jobs.
//
// Bandwidth values are relative units; use ScaleToBmax to normalize a
// pool so the largest mean per-VM demand equals a target Bmax, exactly as
// the evaluation does before each experiment.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"cloudmirror/internal/tag"
)

// BingLike returns the 80-tenant pool mirroring the bing.com dataset
// statistics. The pool is deterministic for a given seed.
func BingLike(seed int64) []*tag.Graph {
	r := rand.New(rand.NewSource(seed))
	pool := make([]*tag.Graph, 0, 80)
	for i := 0; i < 80; i++ {
		size := bingSize(r, i)
		pool = append(pool, buildTenant(r, fmt.Sprintf("bing-%02d", i), size))
	}
	return pool
}

// bingSize draws a tenant size with mean ≈57 and max 732. The last
// tenant is pinned to 732 VMs ("the largest tenant has 732 VMs").
func bingSize(r *rand.Rand, i int) int {
	if i == 79 {
		return 732
	}
	// Lognormal(μ=3.0, σ=1.3) clipped to [1, 500] gives mean ≈50 for
	// the body; the pinned 732-VM tenant raises the pool mean to ≈57.
	s := int(math.Exp(3.0 + 1.3*r.NormFloat64()))
	if s < 1 {
		s = 1
	}
	if s > 500 {
		s = 500
	}
	return s
}

// pattern enumerates the §5 communication structures ("linear, star,
// ring, mesh; some have large intra-service demands similar to
// MapReduce").
type pattern int

const (
	patLinear pattern = iota
	patStar
	patRing
	patMesh
	patMapReduce
	patThreeTier
	numPatterns
)

// buildTenant creates one tenant of the given total size with a randomly
// chosen communication pattern.
func buildTenant(r *rand.Rand, name string, size int) *tag.Graph {
	g := tag.New(name)
	tiers := tierSplit(r, size)
	for i, n := range tiers {
		g.AddTier(fmt.Sprintf("t%d", i), n)
	}
	pat := pattern(r.Intn(int(numPatterns)))
	if len(tiers) == 1 {
		pat = patMapReduce // single components are intra-heavy jobs
	}
	if size >= 150 {
		// The bing dataset's aggregate traffic is dominated by a few
		// large intra-heavy (MapReduce-similar) services, which is what
		// pulls the total inter-component share down to ≈37-65% while
		// the per-component mean stays ≈85-91%.
		pat = patMapReduce
	}
	// Base relative per-VM rate for this tenant. The spread is kept
	// moderate so the Bmax normalization (anchored at the largest mean
	// per-VM demand in the pool) leaves most tenants within a small
	// factor of Bmax, as in the bing dataset: with a wide spread the
	// anchor tenant becomes an outlier and the paper's Bmax axis never
	// stresses the fabric.
	base := math.Exp(1.5 + 0.45*r.NormFloat64())

	trunk := func(u, v int) {
		// Per-VM guarantees sized so tier aggregates roughly match:
		// senders emit base each; receivers sized by the tier ratio.
		s := base * (0.5 + r.Float64())
		ratio := float64(g.TierSize(u)) / float64(g.TierSize(v))
		rcv := s * ratio * (0.75 + 0.5*r.Float64())
		g.AddEdge(u, v, s, rcv)
	}

	switch pat {
	case patLinear:
		for i := 0; i+1 < len(tiers); i++ {
			trunk(i, i+1)
			trunk(i+1, i)
		}
	case patStar:
		for i := 1; i < len(tiers); i++ {
			trunk(0, i)
			trunk(i, 0)
		}
	case patRing:
		for i := 0; i < len(tiers); i++ {
			trunk(i, (i+1)%len(tiers))
		}
	case patMesh:
		for i := 0; i < len(tiers); i++ {
			for j := 0; j < len(tiers); j++ {
				if i != j && r.Float64() < 0.6 {
					trunk(i, j)
				}
			}
		}
	case patMapReduce:
		// Heavy all-to-all shuffle inside each stage plus a forward
		// trunk; these components pull the aggregate inter-component
		// share down, as the bing analysis observes.
		for i := range tiers {
			g.AddSelfLoop(i, base*(8+8*r.Float64()))
		}
		for i := 0; i+1 < len(tiers); i++ {
			trunk(i, i+1)
		}
	case patThreeTier:
		for i := 0; i+1 < len(tiers); i++ {
			trunk(i, i+1)
			trunk(i+1, i)
		}
		// Backend consistency traffic (Fig. 2's B3), kept small so the
		// component's inter fraction stays high.
		last := len(tiers) - 1
		if g.TierSize(last) > 1 {
			g.AddSelfLoop(last, base*0.3*r.Float64())
		}
	}
	// Occasional small intra-tier chatter on non-MapReduce components
	// (management/heartbeat style) — small enough to keep per-component
	// inter fractions around 0.9.
	if pat != patMapReduce {
		for i := range tiers {
			if g.TierSize(i) > 1 && r.Float64() < 0.25 {
				g.AddSelfLoop(i, base*0.1*(0.5+r.Float64()))
			}
		}
	}
	return g
}

// tierSplit divides size VMs into tiers with bing-like shape: mean tier
// size around 10, tier count growing sublinearly with tenant size.
func tierSplit(r *rand.Rand, size int) []int {
	if size == 1 {
		return []int{1}
	}
	want := int(math.Round(math.Sqrt(float64(size)) * (0.8 + 0.8*r.Float64())))
	if want < 2 {
		want = 2
	}
	if want > size {
		want = size
	}
	if want > 12 {
		want = 12
	}
	// Random proportions with a minimum of one VM per tier.
	weights := make([]float64, want)
	var sum float64
	for i := range weights {
		weights[i] = 0.2 + r.Float64()
		sum += weights[i]
	}
	tiers := make([]int, want)
	left := size - want // one VM guaranteed each
	assigned := 0
	for i := range tiers {
		extra := int(float64(left) * weights[i] / sum)
		tiers[i] = 1 + extra
		assigned += extra
	}
	for assigned < left {
		tiers[r.Intn(want)]++
		assigned++
	}
	return tiers
}

// HPCloudLike returns a pool mirroring the HP Public Cloud (Choreo)
// measurements: 40 smaller tenants, mean ≈20 VMs, mostly hose- and
// star-shaped applications.
func HPCloudLike(seed int64) []*tag.Graph {
	r := rand.New(rand.NewSource(seed))
	pool := make([]*tag.Graph, 0, 40)
	for i := 0; i < 40; i++ {
		size := 1 + int(math.Exp(2.3+1.0*r.NormFloat64()))
		if size > 150 {
			size = 150
		}
		g := tag.New(fmt.Sprintf("hpc-%02d", i))
		base := math.Exp(1.2 + 0.8*r.NormFloat64())
		if size <= 4 || r.Float64() < 0.4 {
			// Plain hose application.
			a := g.AddTier("app", size)
			if size > 1 {
				g.AddSelfLoop(a, base*2)
			} else {
				ext := g.AddExternal("inet", 0)
				g.AddEdge(a, ext, base, base)
			}
		} else {
			// Star: a frontend plus backends.
			front := maxInt(1, size/5)
			hub := g.AddTier("front", front)
			rest := g.AddTier("back", size-front)
			g.AddEdge(hub, rest, base*2, base*2*float64(front)/float64(size-front))
			g.AddEdge(rest, hub, base, base*float64(size-front)/float64(front))
		}
		pool = append(pool, g)
	}
	return pool
}

// SyntheticMix returns the paper's synthetic workload: an artificial mix
// of three-tier web services and MapReduce-style batch jobs of varying
// sizes.
func SyntheticMix(seed int64) []*tag.Graph {
	r := rand.New(rand.NewSource(seed))
	pool := make([]*tag.Graph, 0, 60)
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			pool = append(pool, webService(r, fmt.Sprintf("web-%02d", i)))
		} else {
			pool = append(pool, mapReduceJob(r, fmt.Sprintf("mr-%02d", i)))
		}
	}
	return pool
}

func webService(r *rand.Rand, name string) *tag.Graph {
	g := tag.New(name)
	scale := 1 + r.Intn(10)
	web := g.AddTier("web", 2*scale)
	logic := g.AddTier("logic", 3*scale)
	db := g.AddTier("db", scale)
	b1 := 5 + 10*r.Float64()
	b2 := b1 / (2 + 3*r.Float64())
	g.AddBidirectional(web, logic, b1, b1*2/3)
	g.AddBidirectional(logic, db, b2, b2*3)
	if scale > 1 {
		g.AddSelfLoop(db, b2)
	}
	return g
}

func mapReduceJob(r *rand.Rand, name string) *tag.Graph {
	g := tag.New(name)
	maps := 5 + r.Intn(40)
	reds := maxInt(1, maps/(2+r.Intn(3)))
	m := g.AddTier("map", maps)
	rd := g.AddTier("reduce", reds)
	shuffle := 10 + 30*r.Float64()
	g.AddEdge(m, rd, shuffle, shuffle*float64(maps)/float64(reds))
	g.AddSelfLoop(m, shuffle/4)
	return g
}

// MaxPerVMDemand returns the largest mean per-VM demand (Bvm) across the
// pool — the quantity Bmax scaling normalizes.
func MaxPerVMDemand(pool []*tag.Graph) float64 {
	var max float64
	for _, g := range pool {
		if d := g.PerVMDemand(); d > max {
			max = d
		}
	}
	return max
}

// ScaleToBmax rescales every guarantee in the pool (in place) so the
// tenant with the largest mean per-VM demand hits exactly bmax Mbps —
// the §5.1 normalization "the average per-VM demand of the tenant with
// the largest Bvm becomes the target per-VM bandwidth (Bmax)".
func ScaleToBmax(pool []*tag.Graph, bmax float64) {
	max := MaxPerVMDemand(pool)
	if max == 0 {
		return
	}
	f := bmax / max
	for _, g := range pool {
		g.Scale(f)
	}
}

// ScaleSizes returns a copy of the pool with every tier size multiplied
// by factor (minimum one VM). Reduced-scale experiments use it so tenant
// sizes shrink proportionally with the simulated datacenter.
func ScaleSizes(pool []*tag.Graph, factor float64) []*tag.Graph {
	out := make([]*tag.Graph, len(pool))
	for i, g := range pool {
		ng := tag.New(g.Name)
		for t := 0; t < g.Tiers(); t++ {
			tier := g.Tier(t)
			if tier.External {
				ng.AddExternal(tier.Name, tier.N)
				continue
			}
			n := int(math.Round(float64(tier.N) * factor))
			if n < 1 {
				n = 1
			}
			ng.AddTier(tier.Name, n)
		}
		for _, e := range g.Edges() {
			if e.SelfLoop() {
				ng.AddSelfLoop(e.From, e.S)
			} else {
				ng.AddEdge(e.From, e.To, e.S, e.R)
			}
		}
		out[i] = ng
	}
	return out
}

// ClonePool deep-copies a pool so experiments can rescale independently.
func ClonePool(pool []*tag.Graph) []*tag.Graph {
	c := make([]*tag.Graph, len(pool))
	for i, g := range pool {
		c[i] = g.Clone()
	}
	return c
}

// MeanSize returns the mean tenant size (VMs) of a pool: the Ts of the
// load formula load = Ts·λ·Td / totalSlots.
func MeanSize(pool []*tag.Graph) float64 {
	total := 0
	for _, g := range pool {
		total += g.VMs()
	}
	return float64(total) / float64(len(pool))
}

// InterComponentStats reports the bing-style traffic split of a pool:
// the mean over components of their inter-component traffic fraction,
// and the aggregate inter-component share of all traffic. The paper
// reports ≈91% (≈85% excluding management) for the former and 65% (37%
// excluding management) for the latter.
func InterComponentStats(pool []*tag.Graph) (meanPerComponent, aggregate float64) {
	var fracSum float64
	components := 0
	var interTotal, allTotal float64
	for _, g := range pool {
		perTier := make([]struct{ inter, intra float64 }, g.Tiers())
		for _, e := range g.Edges() {
			agg := g.EdgeAggregate(e)
			if math.IsInf(agg, 1) {
				continue
			}
			if e.SelfLoop() {
				perTier[e.From].intra += agg
			} else {
				perTier[e.From].inter += agg
				perTier[e.To].inter += agg
				interTotal += agg
			}
			allTotal += agg
		}
		for t := range perTier {
			tot := perTier[t].inter + perTier[t].intra
			if tot == 0 {
				continue
			}
			fracSum += perTier[t].inter / tot
			components++
		}
	}
	if components > 0 {
		meanPerComponent = fracSum / float64(components)
	}
	if allTotal > 0 {
		aggregate = interTotal / allTotal
	}
	return meanPerComponent, aggregate
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
