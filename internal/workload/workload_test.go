package workload

import (
	"math"
	"testing"
)

func TestBingLikeShape(t *testing.T) {
	pool := BingLike(1)
	if len(pool) != 80 {
		t.Fatalf("pool size = %d, want 80", len(pool))
	}
	mean := MeanSize(pool)
	if mean < 30 || mean > 90 {
		t.Errorf("mean tenant size = %g, want ≈57 (30..90)", mean)
	}
	maxSize := 0
	for _, g := range pool {
		if err := g.Validate(); err != nil {
			t.Fatalf("tenant %s invalid: %v", g.Name, err)
		}
		if g.VMs() > maxSize {
			maxSize = g.VMs()
		}
	}
	if maxSize != 732 {
		t.Errorf("largest tenant = %d VMs, want 732", maxSize)
	}
}

// TestBingLikeTrafficSplit checks the calibration against the published
// bing statistics: high per-component inter-component fraction, with the
// aggregate share pulled down by intra-heavy (MapReduce-like) services.
func TestBingLikeTrafficSplit(t *testing.T) {
	perComp, aggregate := InterComponentStats(BingLike(1))
	if perComp < 0.70 || perComp > 0.98 {
		t.Errorf("mean per-component inter fraction = %g, want ≈0.85-0.91", perComp)
	}
	if aggregate < 0.2 || aggregate > 0.7 {
		t.Errorf("aggregate inter fraction = %g, want ≈0.37-0.65", aggregate)
	}
	if aggregate >= perComp {
		t.Errorf("aggregate (%g) should sit below per-component mean (%g)", aggregate, perComp)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := BingLike(42), BingLike(42)
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("tenant %d differs across identical seeds", i)
		}
	}
	c := BingLike(43)
	same := true
	for i := range a {
		if a[i].String() != c[i].String() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical pools")
	}
}

func TestScaleToBmax(t *testing.T) {
	pool := BingLike(7)
	ScaleToBmax(pool, 800)
	if got := MaxPerVMDemand(pool); math.Abs(got-800) > 1e-6 {
		t.Errorf("max per-VM demand after scaling = %g, want 800", got)
	}
	// Scaling twice is idempotent in effect.
	ScaleToBmax(pool, 400)
	if got := MaxPerVMDemand(pool); math.Abs(got-400) > 1e-6 {
		t.Errorf("rescale to 400 = %g", got)
	}
}

func TestClonePoolIndependent(t *testing.T) {
	pool := BingLike(7)
	clone := ClonePool(pool)
	ScaleToBmax(clone, 10)
	if MaxPerVMDemand(pool) == MaxPerVMDemand(clone) {
		t.Error("ClonePool shares storage with original")
	}
}

func TestHPCloudLike(t *testing.T) {
	pool := HPCloudLike(3)
	if len(pool) != 40 {
		t.Fatalf("pool size = %d, want 40", len(pool))
	}
	for _, g := range pool {
		if err := g.Validate(); err != nil {
			t.Fatalf("tenant %s invalid: %v", g.Name, err)
		}
	}
	if mean := MeanSize(pool); mean < 5 || mean > 60 {
		t.Errorf("mean size = %g, want small tenants", mean)
	}
}

func TestSyntheticMix(t *testing.T) {
	pool := SyntheticMix(3)
	if len(pool) != 60 {
		t.Fatalf("pool size = %d, want 60", len(pool))
	}
	webs, mrs := 0, 0
	for _, g := range pool {
		if err := g.Validate(); err != nil {
			t.Fatalf("tenant %s invalid: %v", g.Name, err)
		}
		if g.TierIndex("web") >= 0 {
			webs++
		}
		if g.TierIndex("map") >= 0 {
			mrs++
		}
	}
	if webs != 30 || mrs != 30 {
		t.Errorf("mix = %d web + %d mapreduce, want 30+30", webs, mrs)
	}
}

func TestWorkloadRatiosFig1a(t *testing.T) {
	entries := WorkloadRatios()
	if len(entries) != 10 {
		t.Fatalf("Fig 1(a) has %d workloads, want 10", len(entries))
	}
	// The paper's observation: interactive workloads reach similar or
	// higher BW:CPU ratios than batch jobs.
	var batchHi, interHi float64
	for _, e := range entries {
		if e.Lo <= 0 || e.Hi < e.Lo {
			t.Errorf("%s: bad range [%g,%g]", e.Name, e.Lo, e.Hi)
		}
		switch e.Kind {
		case Batch:
			batchHi = math.Max(batchHi, e.Hi)
		case Interactive:
			interHi = math.Max(interHi, e.Hi)
		}
	}
	if interHi <= batchHi {
		t.Errorf("interactive max %g should exceed batch max %g", interHi, batchHi)
	}
}

func TestDatacenterRatiosFig1b(t *testing.T) {
	const serverGHz = 40 // 16 cores × 2.5 GHz
	dcs := DatacenterRatios(serverGHz)
	if len(dcs) != 4 {
		t.Fatalf("Fig 1(b) has %d datacenters, want 4", len(dcs))
	}
	for _, dc := range dcs {
		if dc.Name == "full-bisection" {
			// Non-oversubscribed: flat ratio across levels.
			if math.Abs(dc.Server-dc.ToR) > 1e-9 || math.Abs(dc.ToR-dc.Agg) > 1e-9 {
				t.Errorf("%s: ratios (%g,%g,%g) should be flat", dc.Name, dc.Server, dc.ToR, dc.Agg)
			}
			continue
		}
		// Oversubscription: provisioned ratio shrinks up the tree —
		// "well provisioned at the server level, but not at the ToR or
		// aggregation level".
		if !(dc.Server > dc.ToR && dc.ToR > dc.Agg) {
			t.Errorf("%s: ratios (%g,%g,%g) not decreasing", dc.Name, dc.Server, dc.ToR, dc.Agg)
		}
	}
}

func TestScaleSizes(t *testing.T) {
	pool := BingLike(7)
	scaled := ScaleSizes(pool, 0.25)
	if len(scaled) != len(pool) {
		t.Fatalf("pool size changed: %d", len(scaled))
	}
	for i, g := range scaled {
		if err := g.Validate(); err != nil {
			t.Fatalf("scaled tenant %d invalid: %v", i, err)
		}
		orig := pool[i]
		if g.Tiers() != orig.Tiers() || len(g.Edges()) != len(orig.Edges()) {
			t.Errorf("tenant %d structure changed", i)
		}
		for tr := 0; tr < g.Tiers(); tr++ {
			want := int(0.25*float64(orig.TierSize(tr)) + 0.5)
			if want < 1 {
				want = 1
			}
			if g.Tier(tr).External {
				continue
			}
			if g.TierSize(tr) != want {
				t.Errorf("tenant %d tier %d: size %d, want %d", i, tr, g.TierSize(tr), want)
			}
		}
		// Per-VM guarantees unchanged.
		for e := range g.Edges() {
			if g.Edges()[e].S != orig.Edges()[e].S {
				t.Errorf("tenant %d edge %d guarantee changed", i, e)
			}
		}
	}
	// Original untouched.
	if pool[79].VMs() != 732 {
		t.Error("ScaleSizes mutated the source pool")
	}
}

func TestTierSplitCoversSize(t *testing.T) {
	pool := BingLike(5)
	for _, g := range pool {
		total := 0
		for i := 0; i < g.Tiers(); i++ {
			n := g.TierSize(i)
			if n < 1 && !g.Tier(i).External {
				t.Errorf("%s tier %d empty", g.Name, i)
			}
			total += n
		}
		if total != g.VMs() {
			t.Errorf("%s: tier sizes sum %d != VMs %d", g.Name, total, g.VMs())
		}
	}
}
