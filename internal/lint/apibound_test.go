package lint_test

import (
	"testing"

	"cloudmirror/internal/lint"
	"cloudmirror/internal/lint/linttest"
)

// TestAPIBound covers all five boundary rules: direct imports
// (cmd/direct, cmd/placers, cmd/enforcei, internal/walclient),
// type-resolved banned objects under the default and an aliased
// package name (cmd/plain, cmd/aliased), a transitive breach through a
// laundering helper (cmd/launder), and the sanctioned negatives — the
// guarantee gateway (cmd/sanctioned) and the wal allow list (cmd/bwd).
func TestAPIBound(t *testing.T) {
	linttest.Run(t, lint.APIBoundAnalyzer,
		"cloudmirror/cmd/direct",
		"cloudmirror/cmd/plain",
		"cloudmirror/cmd/aliased",
		"cloudmirror/cmd/launder",
		"cloudmirror/cmd/placers",
		"cloudmirror/cmd/enforcei",
		"cloudmirror/cmd/sanctioned",
		"cloudmirror/cmd/bwd",
		"cloudmirror/internal/walclient",
	)
}
