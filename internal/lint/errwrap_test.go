package lint_test

import (
	"testing"

	"cloudmirror/internal/lint"
	"cloudmirror/internal/lint/linttest"
)

func TestErrWrap(t *testing.T) {
	linttest.Run(t, lint.ErrWrapAnalyzer, "cloudmirror/internal/flows")
}

// TestErrWrapIgnoresNonNetemCallers checks the gate: a package that
// does not import internal/netem may return bare errors.
func TestErrWrapIgnoresNonNetemCallers(t *testing.T) {
	linttest.Run(t, lint.ErrWrapAnalyzer, "cloudmirror/internal/other")
}
