package driver

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked module package ready for analysis.
type Package struct {
	// ImportPath is the package's import path.
	ImportPath string
	// Fset is the file set shared by all packages of one load.
	Fset *token.FileSet
	// Files is the parsed syntax, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checking results.
	Info *types.Info
	// Imports lists the package's direct imports (all, not just
	// module-internal ones).
	Imports []string
}

// Load lists patterns in dir and returns every matched module package,
// parsed and type-checked, in deterministic import-path order. Imports
// — including module-internal ones — resolve through compiler export
// data, so each package type-checks independently of source order.
func Load(dir string, patterns ...string) ([]*Package, *Index, error) {
	ix, err := ListIndex(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, func(path string) (string, bool) {
		p, ok := ix.Pkgs[path]
		if !ok || p.Export == "" {
			return "", false
		}
		return p.Export, true
	})
	conf := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	roots := append([]string(nil), ix.Roots...)
	sort.Strings(roots)
	var pkgs []*Package
	for _, path := range roots {
		lp := ix.Pkgs[path]
		if lp == nil || lp.Standard || lp.Module == nil || lp.Module.Path != ix.ModulePath {
			continue
		}
		pkg, err := typecheck(fset, conf, lp)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, ix, nil
}

// typecheck parses lp's sources and type-checks them with conf.
func typecheck(fset *token.FileSet, conf *types.Config, lp *ListPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Imports:    append([]string(nil), lp.Imports...),
	}, nil
}

// NewInfo returns a types.Info with every result map allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// ExportImporter returns a types.Importer that resolves import paths
// through compiler export-data files. resolve maps an import path to
// the file holding its export data (as produced by `go list -export` or
// recorded in a vet cfg's PackageFile map).
func ExportImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// ModuleImportsFunc builds the ModuleImports callback for analysis
// passes from a load's index: the direct imports of each module
// package, filtered to module-internal ones, in sorted order.
func ModuleImportsFunc(ix *Index) func(path string) ([]string, bool) {
	prefix := ix.ModulePath + "/"
	graph := map[string][]string{}
	for path, lp := range ix.Pkgs {
		if lp.Standard || lp.Module == nil || lp.Module.Path != ix.ModulePath {
			continue
		}
		var deps []string
		for _, imp := range lp.Imports {
			if imp == ix.ModulePath || strings.HasPrefix(imp, prefix) {
				deps = append(deps, imp)
			}
		}
		sort.Strings(deps)
		graph[path] = deps
	}
	return func(path string) ([]string, bool) {
		deps, ok := graph[path]
		return deps, ok
	}
}
