// Package driver loads type-checked packages for the cloudlint
// analyzers and runs them, using only the standard library and the go
// command.
//
// Two entry points exist. Standalone: Load runs `go list -deps -export`
// over the requested patterns, parses the module's own packages from
// source, and type-checks them against the compiler's export data for
// every dependency — so the whole module (plus its full import graph)
// is visible in one run. Unitchecker: Vet implements the `go vet
// -vettool` protocol, analyzing one compilation unit from the cfg file
// the go command hands it.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
)

// ListPackage is the subset of `go list -json` output the driver needs.
type ListPackage struct {
	// ImportPath is the package's import path.
	ImportPath string
	// Dir is the directory holding the package's sources.
	Dir string
	// Export is the file containing the package's export data,
	// produced by `go list -export`.
	Export string
	// Standard marks packages in the standard library.
	Standard bool
	// GoFiles lists the package's non-test Go sources (no cgo).
	GoFiles []string
	// Imports lists the package's direct imports.
	Imports []string
	// Module identifies the containing module, nil for GOROOT packages.
	Module *ListModule
}

// ListModule is the module stanza of `go list -json` output.
type ListModule struct {
	// Path is the module path.
	Path string
}

// Index holds the package metadata for one `go list -deps -export` run:
// every listed package (the requested patterns plus their transitive
// dependencies) keyed by import path.
type Index struct {
	// Pkgs maps import path to package metadata.
	Pkgs map[string]*ListPackage
	// Roots lists the import paths matched by the patterns themselves,
	// in `go list` order.
	Roots []string
	// ModulePath is the main module's path ("cloudmirror").
	ModulePath string
}

// ListIndex runs `go list -deps -export -json` in dir over patterns and
// returns the resulting package index. CGO is disabled so the standard
// library resolves to its pure-Go form and every package can be parsed
// from GoFiles alone.
func ListIndex(dir string, patterns ...string) (*Index, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,Standard,GoFiles,Imports,Module",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	ix := &Index{Pkgs: map[string]*ListPackage{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(ListPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		ix.Pkgs[p.ImportPath] = p
	}
	// -deps lists dependencies before dependents, so the roots are the
	// suffix of the stream; recover them with a plain list call.
	roots, err := listRoots(dir, patterns)
	if err != nil {
		return nil, err
	}
	ix.Roots = roots
	for _, p := range ix.Pkgs {
		if p.Module != nil && !p.Standard {
			ix.ModulePath = p.Module.Path
			break
		}
	}
	return ix, nil
}

// listRoots resolves patterns to the import paths they match.
func listRoots(dir string, patterns []string) ([]string, error) {
	args := append([]string{"list"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var roots []string
	for _, line := range bytes.Split(bytes.TrimSpace(out), []byte("\n")) {
		if len(line) > 0 {
			roots = append(roots, string(line))
		}
	}
	return roots, nil
}
