package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"runtime"
	"sort"
	"strings"

	"cloudmirror/internal/lint/analysis"
)

// VetConfig mirrors the JSON configuration file the go command passes
// to a `go vet -vettool` binary (one file per compilation unit). Field
// names and meanings follow x/tools/go/analysis/unitchecker.Config,
// which documents the protocol.
type VetConfig struct {
	// ID is the build ID of the unit.
	ID string
	// Compiler is the compiler producing export data ("gc").
	Compiler string
	// Dir is the unit's working directory.
	Dir string
	// ImportPath is the unit's import path; test variants carry a
	// " [pkg.test]" suffix.
	ImportPath string
	// GoVersion is the language version for type checking.
	GoVersion string
	// GoFiles lists the unit's Go sources (absolute paths).
	GoFiles []string
	// NonGoFiles lists non-Go sources (unused here).
	NonGoFiles []string
	// IgnoredFiles lists build-constrained-away sources (unused here).
	IgnoredFiles []string
	// ImportMap maps import paths as written to canonical paths.
	ImportMap map[string]string
	// PackageFile maps canonical import paths to export-data files.
	PackageFile map[string]string
	// Standard marks standard-library import paths.
	Standard map[string]bool
	// PackageVetx maps import paths to fact files of dependencies
	// (unused: cloudlint analyzers need no cross-unit facts).
	PackageVetx map[string]string
	// VetxOnly requests facts without diagnostics.
	VetxOnly bool
	// VetxOutput is the fact file this unit must write.
	VetxOutput string
	// SucceedOnTypecheckFailure requests exit 0 on type errors (the
	// compiler proper will report them).
	SucceedOnTypecheckFailure bool
}

// Vet runs analyzers over the single compilation unit described by the
// cfg file at cfgPath, following the `go vet -vettool` protocol:
// diagnostics go to stderr, the (empty) facts file is written to
// cfg.VetxOutput, and the returned exit code is 2 when there are
// findings. Test variants of a package are skipped so vet reports
// exactly what `make analyze` enforces on the main tree.
func Vet(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cloudlint: reading %s: %v\n", cfgPath, err)
		return 1
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cloudlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command treats the vetx file as the unit's output and
	// caches it; it must exist even though cloudlint keeps no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "cloudlint: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || isTestVariant(cfg.ImportPath) {
		return 0
	}
	findings, err := runUnit(cfg, analyzers)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "cloudlint: %v\n", err)
		return 1
	}
	Print(os.Stderr, findings)
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// isTestVariant reports whether path names a test package or a
// test-augmented variant of a package.
func isTestVariant(path string) bool {
	return strings.Contains(path, " [") || strings.HasSuffix(path, "_test") ||
		strings.HasSuffix(path, ".test")
}

// runUnit parses and type-checks the unit and applies the analyzers.
// The go command merges a package's in-package test files into the same
// unit (under the plain import path), so _test.go sources are filtered
// out here: the standalone driver analyzes GoFiles only, and vet must
// report exactly the same findings.
func runUnit(cfg *VetConfig, analyzers []*analysis.Analyzer) ([]Finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	imp := ExportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		return file, ok
	})
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		ImportPath: cfg.ImportPath,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	// One unit at a time: the module import graph is unavailable, so
	// analyzers degrade to direct-import checks (ModuleImports reports
	// not-ok). `make analyze` runs the standalone driver, which has
	// the full graph.
	return Run([]*Package{pkg}, analyzers, nil)
}

// VersionAndFlags handles the go command's tool-discovery invocations:
// `cloudlint -V=full` (version for the build cache key) and `cloudlint
// -flags` (supported analyzer flags as JSON). It returns true when the
// invocation was one of those and has been fully handled.
func VersionAndFlags(args []string, analyzers []*analysis.Analyzer) bool {
	if len(args) != 1 {
		return false
	}
	switch args[0] {
	case "-V=full", "--V=full":
		fmt.Printf("cloudlint version v1.0.0-stdlib\n")
		return true
	case "-flags", "--flags":
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var flags []jsonFlag
		sorted := append([]*analysis.Analyzer(nil), analyzers...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, a := range sorted {
			flags = append(flags, jsonFlag{
				Name:  a.Name,
				Bool:  true,
				Usage: firstLine(a.Doc),
			})
		}
		data, err := json.Marshal(flags)
		if err != nil {
			return true
		}
		fmt.Println(string(data))
		return true
	}
	return false
}

// firstLine returns the first line of s.
func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
