package driver

import (
	"fmt"
	"go/token"
	"io"
	"sort"

	"cloudmirror/internal/lint/analysis"
)

// Finding is one diagnostic resolved to a printable position.
type Finding struct {
	// Position is the file:line:col of the diagnostic.
	Position token.Position
	// Message is the diagnostic text.
	Message string
	// Analyzer names the analyzer that reported it.
	Analyzer string
}

// Run applies every analyzer to every package and returns the findings
// sorted by file, line, column, then analyzer name — a deterministic
// order regardless of package load order.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer, moduleImports func(string) ([]string, bool)) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:      a,
				Fset:          pkg.Fset,
				Files:         pkg.Files,
				Pkg:           pkg.Types,
				TypesInfo:     pkg.Info,
				ModuleImports: moduleImports,
			}
			pass.Report = func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
					Analyzer: a.Name,
				})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Print writes findings one per line in the conventional
// file:line:col: message (analyzer) form.
func Print(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintf(w, "%s: %s (%s)\n", f.Position, f.Message, f.Analyzer)
	}
}
