package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"cloudmirror/internal/lint/analysis"
)

// ErrWrapAnalyzer guards the typed-error taxonomy around
// internal/netem. In netem itself and in every package that imports it
// (the enforcement/dataplane callers), a returned error constructed on
// the spot — fmt.Errorf without %w, or errors.New — wraps nothing, so
// errors.Is(err, netem.ErrBadInput) stops working one frame up and the
// taxonomy silently decays into strings. Such returns must wrap a
// typed sentinel with %w, or carry a //cloudlint:unwrapped <why>
// justification (for genuinely new error roots, e.g. a sentinel-free
// invariant breach that no caller is meant to match on).
//
// Package-level sentinel declarations (var ErrX = errors.New(...)) are
// not returns and are never flagged — they are the taxonomy.
var ErrWrapAnalyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "require returned errors around internal/netem to wrap a typed sentinel",
	Run:  runErrWrap,
}

// netemPath is the package whose error taxonomy errwrap protects.
const netemPath = "cloudmirror/internal/netem"

func runErrWrap(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() != netemPath && !importsPkg(pass, netemPath) {
		return nil, nil
	}
	pass.WalkStack(func(n ast.Node, _ []ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			bad, what := unwrappedConstructor(pass, call)
			if !bad {
				continue
			}
			if pass.Suppressed(ret, "unwrapped") {
				continue
			}
			pass.Reportf(call.Pos(),
				"returned %s does not wrap a typed sentinel: use %%w with the netem.ErrBadInput taxonomy (or a typed error), or annotate //cloudlint:unwrapped <why>",
				what)
		}
		return true
	})
	return nil, nil
}

// importsPkg reports whether any file of the pass imports path.
func importsPkg(pass *analysis.Pass, path string) bool {
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil && p == path {
				return true
			}
		}
	}
	return false
}

// unwrappedConstructor reports whether call constructs a fresh,
// wrapping-free error: errors.New(...), or fmt.Errorf whose format
// string provably lacks a %w verb. The second result names the shape
// for the diagnostic.
func unwrappedConstructor(pass *analysis.Pass, call *ast.CallExpr) (bool, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false, ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false, ""
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		return true, "errors.New error"
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if len(call.Args) == 0 {
			return false, ""
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok {
			// Dynamic format string: cannot prove a %w, so flag it —
			// the annotation escape hatch covers intentional cases.
			return true, "fmt.Errorf error with non-constant format"
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil || strings.Contains(format, "%w") {
			return false, ""
		}
		return true, "fmt.Errorf error without %w"
	}
	return false, ""
}
