package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cloudmirror/internal/lint/analysis"
)

// FloatOrderAnalyzer flags floating-point accumulation whose iteration
// source is a map range, in any package. Float addition is not
// associative, so `sum += v` over randomized map order produces
// run-to-run ULP jitter — the exact bug class fixed in PR 2, where
// Reservation.TotalReserved summed a map and broke byte-identical
// churn traces. Unlike mapiter this applies to every package: emitted
// tables and benchmark artifacts are diffed byte-for-byte too.
//
// The fix is to iterate sorted keys; a deliberate exception needs a
// //cloudlint:ordered <why> justification on the accumulating
// statement itself (justifying the enclosing range is not enough — a
// loop whose order was argued irrelevant is precisely where a float
// fold is still order-sensitive).
var FloatOrderAnalyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc:  "flag float accumulation driven by map iteration order",
	Run:  runFloatOrder,
}

func runFloatOrder(pass *analysis.Pass) (any, error) {
	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rs) {
			return true
		}
		ast.Inspect(rs.Body, func(inner ast.Node) bool {
			as, ok := inner.(*ast.AssignStmt)
			if !ok || !isFloatAccumulation(pass, as) {
				return true
			}
			if declaredWithin(pass, as.Lhs[0], rs.Body) {
				// The accumulator is an iteration-local: it resets
				// every iteration, so the fold cannot leak map order
				// across iterations.
				return true
			}
			if pass.Suppressed(as, "ordered") {
				return true
			}
			pass.Reportf(as.Pos(),
				"float accumulation into %s depends on the iteration order of map %s; iterate sorted keys or annotate //cloudlint:ordered <why>",
				types.ExprString(as.Lhs[0]), types.ExprString(rs.X))
			return true
		})
		return true
	})
	return nil, nil
}

// isFloatAccumulation reports whether as folds a float value into its
// left-hand side: x += v (-=, *=, /=) or x = x + v and friends.
func isFloatAccumulation(pass *analysis.Pass, as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	if !isFloatExpr(pass, as.Lhs[0]) {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	case token.ASSIGN:
		bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return false
		}
		lhs := types.ExprString(as.Lhs[0])
		return types.ExprString(bin.X) == lhs || types.ExprString(bin.Y) == lhs
	}
	return false
}

// declaredWithin reports whether the root identifier of lhs (peeling
// index, selector and deref wrappers) is declared inside body.
func declaredWithin(pass *analysis.Pass, lhs ast.Expr, body *ast.BlockStmt) bool {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
		default:
			return false
		}
	}
}

// isFloatExpr reports whether e's type is a floating-point type.
func isFloatExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
