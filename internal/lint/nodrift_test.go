package lint_test

import (
	"testing"

	"cloudmirror/internal/lint"
	"cloudmirror/internal/lint/linttest"
)

func TestNoDrift(t *testing.T) {
	linttest.Run(t, lint.NoDriftAnalyzer, "cloudmirror/internal/sim/driftfix")
}

func TestNoDriftIgnoresNonDeterministicPackages(t *testing.T) {
	linttest.Run(t, lint.NoDriftAnalyzer, "cloudmirror/internal/other")
}
