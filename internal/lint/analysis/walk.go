package analysis

import "go/ast"

// WalkStack traverses every node of every file in the pass, calling fn
// with the node and the stack of its ancestors (outermost first, not
// including the node itself). Returning false from fn prunes the
// subtree below the node.
func (p *Pass) WalkStack(fn func(node ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if !descend {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
