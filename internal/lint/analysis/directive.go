package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //cloudlint:<name> <justification> suppression
// comment. The justification is the analyzer's audit trail: every
// directive must carry a non-empty one, and analyzers report an error
// for empty justifications instead of honoring them.
type Directive struct {
	// Name is the directive keyword after "cloudlint:", e.g. "ordered".
	Name string
	// Arg is the justification text after the keyword (may be empty,
	// which analyzers treat as an unjustified — and thus rejected —
	// suppression).
	Arg string
	// Pos is the position of the comment.
	Pos token.Pos
	// File is the file name the comment appears in.
	File string
	// Line is the 1-based line of the comment.
	Line int
}

const directivePrefix = "//cloudlint:"

// directives lazily extracts and caches all cloudlint directives in the
// pass's files.
func (p *Pass) directiveList() []Directive {
	if p.directives != nil {
		return p.directives
	}
	ds := []Directive{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				name, arg, _ := strings.Cut(text, " ")
				pos := p.Fset.Position(c.Pos())
				ds = append(ds, Directive{
					Name: name,
					Arg:  strings.TrimSpace(arg),
					Pos:  c.Pos(),
					File: pos.Filename,
					Line: pos.Line,
				})
			}
		}
	}
	p.directives = ds
	return ds
}

// DirectiveFor looks for a //cloudlint:<name> directive governing node:
// either a trailing comment on the node's first line or a comment on
// the line immediately above it. It returns the directive and true when
// one applies.
func (p *Pass) DirectiveFor(node ast.Node, name string) (Directive, bool) {
	pos := p.Fset.Position(node.Pos())
	for _, d := range p.directiveList() {
		if d.Name != name || d.File != pos.Filename {
			continue
		}
		if d.Line == pos.Line || d.Line == pos.Line-1 {
			return d, true
		}
	}
	return Directive{}, false
}

// Suppressed reports whether node carries a //cloudlint:<name>
// directive with a non-empty justification. When the directive is
// present but the justification is empty, it reports the omission as a
// diagnostic (an unjustified suppression is itself a finding) and
// returns true so the underlying finding is not double-reported.
func (p *Pass) Suppressed(node ast.Node, name string) bool {
	d, ok := p.DirectiveFor(node, name)
	if !ok {
		return false
	}
	if d.Arg == "" {
		p.Reportf(d.Pos, "//cloudlint:%s requires a non-empty justification", name)
	}
	return true
}
