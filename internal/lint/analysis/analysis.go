// Package analysis is a deliberately small, stdlib-only stand-in for
// golang.org/x/tools/go/analysis: it defines the Analyzer/Pass/Diagnostic
// vocabulary that the cloudlint analyzers are written against.
//
// The container this repo builds in has no module proxy access, so
// x/tools cannot be pinned as a dependency; everything here is built on
// go/ast, go/types and the go command. The API mirrors the upstream
// shapes closely enough that migrating to the real go/analysis package
// is a mechanical rename if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (used as the CLI flag and
// the suffix reported with each diagnostic), user-facing documentation,
// and a Run function applied once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer; it must be a valid flag name.
	Name string
	// Doc is the analyzer's user-facing documentation; the first line
	// is used as the one-line summary in -flags output and usage text.
	Doc string
	// Run applies the check to one package and reports findings
	// through pass.Report. The returned value is unused by the
	// cloudlint driver (it exists for x/tools API symmetry).
	Run func(*Pass) (any, error)
}

// Pass carries one package's syntax, type information and reporting
// callback to an Analyzer's Run function.
type Pass struct {
	// Analyzer is the check being run (so shared helpers can name it).
	Analyzer *Analyzer
	// Fset maps token positions for all Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the package's type-checking results.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// ModuleImports returns the direct module-internal imports of the
	// given module package, and whether the driver knows the answer.
	// The standalone driver supplies the full module import graph so
	// analyzers (apibound) can walk transitive imports; the unitchecker
	// driver analyzes one compilation unit at a time and returns
	// ok=false, in which case analyzers must degrade to direct-import
	// checks only.
	ModuleImports func(path string) (imports []string, ok bool)

	directives []Directive
}

// Diagnostic is one finding: a position and a message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message describes the finding.
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
