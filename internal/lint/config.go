package lint

import "strings"

// deterministicPkgs lists the packages whose outputs the determinism
// suite (make determinism, the differential harnesses, crash-recovery
// replay) requires to be byte-identical across runs, worker counts and
// recoveries. mapiter, floatorder and nodrift enforce their source
// invariants only inside these packages and their subpackages.
var deterministicPkgs = []string{
	"cloudmirror/internal/sim",
	"cloudmirror/internal/place",
	"cloudmirror/internal/cluster",
	"cloudmirror/internal/topology",
	"cloudmirror/internal/netem",
	"cloudmirror/internal/dataplane",
	"cloudmirror/internal/enforce",
	"cloudmirror/internal/wal",
	"cloudmirror/guarantee",
}

// IsDeterministicPkg reports whether the import path is one of the
// deterministic packages (or a subpackage of one, like the placer
// packages under internal/place).
func IsDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// BoundaryRule is one public-API boundary contract checked by apibound.
// Rules are plain data so a new boundary is a one-entry addition to
// boundaryRules below.
type BoundaryRule struct {
	// Name identifies the rule in diagnostics.
	Name string
	// Forbidden lists package paths the checked packages must not
	// import (directly, or transitively other than through a Gateway).
	Forbidden []string
	// Objects maps a package path to exported names in it that checked
	// packages must not reference, even though importing the package
	// is otherwise allowed. Resolved through the type checker, so
	// aliased and dot imports cannot evade it.
	Objects map[string][]string
	// Checked lists import-path prefixes the rule applies to.
	Checked []string
	// Allowed lists import-path prefixes exempt from the rule even
	// when they fall under Checked.
	Allowed []string
	// Gateways lists packages the transitive-import walk does not
	// descend into: reaching a forbidden package through a gateway is
	// the sanctioned route (e.g. guarantee wrapping the admitters).
	Gateways []string
	// Hint names the sanctioned alternative, shown in diagnostics.
	Hint string
}

// cmdAndExamples is the checked surface of the original api-check rules
// 1-4: binaries and examples.
var cmdAndExamples = []string{"cloudmirror/cmd", "cloudmirror/examples"}

// guaranteeGateway is the sanctioned route to every internal admission
// and enforcement package.
var guaranteeGateway = []string{"cloudmirror/guarantee"}

// boundaryRules carries the five public-API boundary contracts,
// formerly the five grep rules of scripts/api-check.sh.
var boundaryRules = []BoundaryRule{
	{
		Name:      "cluster",
		Forbidden: []string{"cloudmirror/internal/cluster"},
		Checked:   cmdAndExamples,
		Gateways:  guaranteeGateway,
		Hint:      "use guarantee.New",
	},
	{
		Name: "place-admission",
		Objects: map[string][]string{
			"cloudmirror/internal/place": {
				"NewAdmitter", "NewOptimisticAdmitter",
				"Admitter", "OptimisticAdmitter",
				"Admission", "Grant",
			},
		},
		Checked: cmdAndExamples,
		Hint:    "use guarantee.Service",
	},
	{
		Name: "placer",
		Forbidden: []string{
			"cloudmirror/internal/place/cloudmirror",
			"cloudmirror/internal/place/oktopus",
			"cloudmirror/internal/place/secondnet",
		},
		Checked: cmdAndExamples,
		// internal/experiments drives the paper sweeps over the
		// placers directly; cmd/experiments reaching them through it
		// is the sanctioned route.
		Gateways: append([]string{"cloudmirror/internal/experiments"}, guaranteeGateway...),
		Hint:     "use guarantee.WithAlgorithm",
	},
	{
		Name: "enforcement",
		Forbidden: []string{
			"cloudmirror/internal/enforce",
			"cloudmirror/internal/netem",
			"cloudmirror/internal/dataplane",
		},
		Checked: cmdAndExamples,
		// The simulator and the experiment engine orchestrate
		// enforcement internally; binaries reaching the dataplane
		// through them (cmd/simulate -> sim -> dataplane) is
		// sanctioned — constructing it themselves is not.
		Gateways: append([]string{
			"cloudmirror/internal/sim",
			"cloudmirror/internal/experiments",
		}, guaranteeGateway...),
		Hint: "use guarantee.WithEnforcement",
	},
	{
		Name:      "wal",
		Forbidden: []string{"cloudmirror/internal/wal"},
		Checked:   []string{"cloudmirror"},
		Allowed: []string{
			"cloudmirror/guarantee",
			"cloudmirror/cmd/bwd",
			"cloudmirror/internal/wal",
		},
		Gateways: guaranteeGateway,
		Hint:     "use guarantee.WithDurability",
	},
}

// BoundaryRules returns the apibound rule set (for tests and docs).
func BoundaryRules() []BoundaryRule {
	return boundaryRules
}

// underAny reports whether path equals one of the prefixes or is a
// subpackage of one.
func underAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
