package lint

import (
	"go/types"

	"cloudmirror/internal/lint/analysis"
)

// NoDriftAnalyzer bans ambient nondeterminism in deterministic
// packages: wall clocks (time.Now, time.Since), the process-global
// math/rand RNG, and environment reads (os.Getenv, os.LookupEnv).
// Deterministic packages take injected clocks and seeded *rand.Rand
// values so that replay, the differential harnesses and -cpu sweeps
// reproduce byte-identical traces; one stray time.Now or global
// rand.Intn silently unpins them.
//
// Constructors (rand.New, rand.NewSource) are fine — they are how the
// seeded RNGs are built. Measurement-only wall-clock reads (benchmark
// timings reported but never branching a deterministic trace) carry a
// //cloudlint:wallclock <why> justification on the use.
var NoDriftAnalyzer = &analysis.Analyzer{
	Name: "nodrift",
	Doc:  "ban wall clocks, global RNG and env reads in deterministic packages",
	Run:  runNoDrift,
}

// driftyFuncs maps package path -> function name -> the complaint.
var driftyFuncs = map[string]map[string]string{
	"time": {
		"Now":   "reads the wall clock",
		"Since": "reads the wall clock",
	},
	"os": {
		"Getenv":    "reads the ambient environment",
		"LookupEnv": "reads the ambient environment",
	},
	"math/rand":    globalRandFuncs,
	"math/rand/v2": globalRandFuncs,
}

// globalRandFuncs lists the math/rand (and v2) package-level functions
// that draw from the process-global generator.
var globalRandFuncs = map[string]string{
	"Seed": "mutates the process-global RNG", "Int": "uses the process-global RNG",
	"Intn": "uses the process-global RNG", "Int31": "uses the process-global RNG",
	"Int31n": "uses the process-global RNG", "Int63": "uses the process-global RNG",
	"Int63n": "uses the process-global RNG", "Uint32": "uses the process-global RNG",
	"Uint64": "uses the process-global RNG", "Float32": "uses the process-global RNG",
	"Float64": "uses the process-global RNG", "ExpFloat64": "uses the process-global RNG",
	"NormFloat64": "uses the process-global RNG", "Perm": "uses the process-global RNG",
	"Shuffle": "uses the process-global RNG", "Read": "uses the process-global RNG",
	"N": "uses the process-global RNG", "IntN": "uses the process-global RNG",
	"Int32N": "uses the process-global RNG", "Int64N": "uses the process-global RNG",
	"UintN": "uses the process-global RNG", "Uint32N": "uses the process-global RNG",
	"Uint64N": "uses the process-global RNG",
}

func runNoDrift(pass *analysis.Pass) (any, error) {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			continue // methods like (*rand.Rand).Intn are the fix, not the bug
		}
		names := driftyFuncs[fn.Pkg().Path()]
		if names == nil {
			continue
		}
		why, bad := names[fn.Name()]
		if !bad {
			continue
		}
		if pass.Suppressed(id, "wallclock") {
			continue
		}
		pass.Reportf(id.Pos(),
			"%s.%s %s: deterministic package %s must use injected clocks/seeded RNG/explicit options (//cloudlint:wallclock <why> for measurement-only use)",
			fn.Pkg().Path(), fn.Name(), why, pass.Pkg.Path())
	}
	return nil, nil
}
