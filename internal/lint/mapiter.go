package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"cloudmirror/internal/lint/analysis"
)

// MapIterAnalyzer flags `for range` over a map in a deterministic
// package. Go randomizes map iteration order, so any map range whose
// body has order-sensitive effects is a latent determinism bug: the
// byte-identical admission traces, ledgers and enforcement transcripts
// this repo guarantees all flow through these packages.
//
// Recognized order-insensitive forms are not flagged:
//
//   - collect-then-sort: every statement appends to a slice, and each
//     appended slice is sorted by a following statement in the same
//     block (sort.* or slices.Sort*);
//   - exact commutative integer accumulation (n++, n--, n += v, |=,
//     &=, ^=, -=) whose right-hand side does not read the accumulator;
//   - keyed map writes dst[k] = v and delete(dst, k) where k is the
//     iteration key and the value does not read dst.
//
// Everything else needs the keys sorted first, or a
// //cloudlint:ordered <why> justification on (or directly above) the
// range statement. An empty justification is itself reported.
var MapIterAnalyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag iteration-order-sensitive map ranges in deterministic packages",
	Run:  runMapIter,
}

func runMapIter(pass *analysis.Pass) (any, error) {
	if !IsDeterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.WalkStack(func(n ast.Node, stack []ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapRange(pass, rs) {
			return true
		}
		if pass.Suppressed(rs, "ordered") {
			return true
		}
		if safeMapRange(pass, rs, stack) {
			return true
		}
		pass.Reportf(rs.Pos(),
			"range over map %s is iteration-order sensitive in deterministic package %s; sort the keys first or annotate //cloudlint:ordered <why>",
			types.ExprString(rs.X), pass.Pkg.Path())
		return true
	})
	return nil, nil
}

// isMapRange reports whether rs ranges over a value of map type.
func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// safeMapRange reports whether every statement in the loop body is one
// of the recognized order-insensitive forms, and every appended slice
// is sorted by a later sibling statement of the range itself.
func safeMapRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	keyObj := identObject(pass, rs.Key)
	var appended []types.Object
	if !safeStmts(pass, rs.Body.List, keyObj, &appended) {
		return false
	}
	for _, obj := range appended {
		if !sortedAfter(pass, rs, stack, obj) {
			return false
		}
	}
	return true
}

// safeStmts classifies a statement list inside a map-range body,
// recursing through nested blocks, deterministic-order nested loops and
// pure-condition ifs. keyObj is the outer map's iteration key (keyed
// map writes and deletes stay distinct per iteration only for it).
// Appended slices accumulate into *appended for the caller's
// sorted-after check.
func safeStmts(pass *analysis.Pass, stmts []ast.Stmt, keyObj types.Object, appended *[]types.Object) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			if !isIntegerExpr(pass, s.X) {
				return false
			}
		case *ast.AssignStmt:
			obj, ok := safeAssign(pass, s, keyObj)
			if !ok {
				return false
			}
			if obj != nil {
				*appended = append(*appended, obj)
			}
		case *ast.ExprStmt:
			if !isKeyedDelete(pass, s, keyObj) {
				return false
			}
		case *ast.RangeStmt:
			// A nested range is treated as a block: if it ranges over
			// another map it is visited (and judged) on its own, and
			// its body must still be order-insensitive with respect to
			// the outer key.
			if !safeStmts(pass, s.Body.List, keyObj, appended) {
				return false
			}
		case *ast.BlockStmt:
			if !safeStmts(pass, s.List, keyObj, appended) {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || !pureExpr(s.Cond) {
				return false
			}
			if !safeStmts(pass, s.Body.List, keyObj, appended) {
				return false
			}
			if s.Else != nil {
				if !safeStmts(pass, []ast.Stmt{s.Else}, keyObj, appended) {
					return false
				}
			}
		case *ast.BranchStmt:
			if s.Label != nil || s.Tok == token.GOTO {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// pureExpr reports whether e is free of calls other than the
// allocation- and query-only builtins — a cheap side-effect-freedom
// check for if conditions and iteration-local initializers.
func pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return pure
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && pureBuiltins[id.Name] {
			return pure
		}
		pure = false
		return false
	})
	return pure
}

// pureBuiltins are the builtins pureExpr tolerates.
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "make": true, "new": true, "min": true, "max": true,
}

// safeAssign classifies one assignment in a map-range body. It returns
// (slice, true) for `s = append(s, ...)` (the caller must then find a
// following sort of s), (nil, true) for the other safe forms, and
// (nil, false) when the assignment is order-sensitive.
func safeAssign(pass *analysis.Pass, s *ast.AssignStmt, keyObj types.Object) (types.Object, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil, false
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	switch s.Tok {
	case token.DEFINE:
		// Declaring an iteration-local with a pure initializer has no
		// cross-iteration effect.
		if pureExpr(rhs) {
			return nil, true
		}
		return nil, false
	case token.ASSIGN:
		// s = append(s, ...): order-insensitive once sorted.
		if obj := appendTarget(pass, lhs, rhs); obj != nil {
			return obj, true
		}
		// dst[k] = v with the iteration key: each iteration writes a
		// distinct key, so the final map is order-independent as long
		// as v does not read dst.
		if ix, ok := lhs.(*ast.IndexExpr); ok && keyObj != nil {
			dst := identObject(pass, ix.X)
			if dst != nil && isMapExpr(pass, ix.X) &&
				identObject(pass, ix.Index) == keyObj &&
				!usesObject(pass, rhs, dst) {
				return nil, true
			}
		}
		return nil, false
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Integer accumulation is exact and commutative, hence
		// order-independent — unless the RHS reads the accumulator.
		acc := identObject(pass, lhs)
		if isIntegerExpr(pass, lhs) && (acc == nil || !usesObject(pass, rhs, acc)) {
			return nil, true
		}
		return nil, false
	default:
		return nil, false
	}
}

// appendTarget returns the object of s when rhs is `append(s, ...)`
// and lhs resolves to the same s, else nil.
func appendTarget(pass *analysis.Pass, lhs, rhs ast.Expr) types.Object {
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	target := identObject(pass, lhs)
	if target == nil || identObject(pass, call.Args[0]) != target {
		return nil
	}
	return target
}

// isKeyedDelete reports whether s is `delete(dst, k)` with the
// iteration key k: the set of deleted keys is order-independent.
func isKeyedDelete(pass *analysis.Pass, s *ast.ExprStmt, keyObj types.Object) bool {
	call, ok := s.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || keyObj == nil {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "delete" {
		return false
	}
	return identObject(pass, call.Args[1]) == keyObj
}

// sortedAfter reports whether a statement after rs in its enclosing
// block sorts the slice bound to obj.
func sortedAfter(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	if len(stack) == 0 {
		return false
	}
	siblings := blockStmts(stack[len(stack)-1])
	idx := -1
	for i, s := range siblings {
		if s == ast.Stmt(rs) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, s := range siblings[idx+1:] {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		if call, ok := es.X.(*ast.CallExpr); ok && isSortOf(pass, call, obj) {
			return true
		}
	}
	return false
}

// blockStmts returns the statement list of a block-like node.
func blockStmts(n ast.Node) []ast.Stmt {
	switch b := n.(type) {
	case *ast.BlockStmt:
		return b.List
	case *ast.CaseClause:
		return b.Body
	case *ast.CommClause:
		return b.Body
	}
	return nil
}

// isSortOf reports whether call is a sort.* or slices.Sort* call whose
// first argument (unwrapping one conversion, for sort.Sort(ByX(s)))
// resolves to obj.
func isSortOf(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort", "slices":
	default:
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	arg := call.Args[0]
	if identObject(pass, arg) == obj {
		return true
	}
	// sort.Sort(byName(s)), sort.Sort(sort.StringSlice(s)): unwrap one
	// conversion or constructor call around the slice.
	if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
		return identObject(pass, inner.Args[0]) == obj
	}
	return false
}

// identObject resolves e to the object of a plain identifier (possibly
// parenthesized), or nil.
func identObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[v]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[v]
	}
	return nil
}

// usesObject reports whether obj is referenced anywhere inside e.
func usesObject(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isIntegerExpr reports whether e's type is an integer type.
func isIntegerExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isMapExpr reports whether e's type is a map type.
func isMapExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
