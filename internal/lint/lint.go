// Package lint holds the cloudlint analyzer suite: five static checks
// that turn this repository's hand-enforced determinism and
// API-boundary invariants into machine-checked facts.
//
//   - mapiter: no unordered map iteration in deterministic packages.
//   - floatorder: no float accumulation driven by map iteration order.
//   - nodrift: no wall clocks, global RNG, or environment reads in
//     deterministic packages.
//   - apibound: the public-API boundary rules of scripts/api-check.sh,
//     checked on the real import graph and resolved objects.
//   - errwrap: errors returned around internal/netem wrap a typed
//     sentinel, preserving the ErrBadInput taxonomy.
//
// Suppressions are justification comments checked by the analyzers
// themselves: //cloudlint:ordered <why> (mapiter, floatorder),
// //cloudlint:wallclock <why> (nodrift), //cloudlint:unwrapped <why>
// (errwrap). An empty justification is itself a finding, so every
// suppression in the tree carries its reason next to the code.
//
// The analyzers are written against internal/lint/analysis, a small
// stdlib-only mirror of golang.org/x/tools/go/analysis (unavailable in
// the build environment), and run through cmd/cloudlint either
// standalone (`make analyze`) or as a `go vet -vettool`.
package lint

import "cloudmirror/internal/lint/analysis"

// Analyzers returns the full cloudlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapIterAnalyzer,
		FloatOrderAnalyzer,
		NoDriftAnalyzer,
		APIBoundAnalyzer,
		ErrWrapAnalyzer,
	}
}
