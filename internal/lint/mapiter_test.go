package lint_test

import (
	"strings"
	"testing"

	"cloudmirror/internal/lint"
	"cloudmirror/internal/lint/linttest"
)

func TestMapIter(t *testing.T) {
	linttest.Run(t, lint.MapIterAnalyzer, "cloudmirror/internal/sim/mapiterfix")
}

func TestMapIterIgnoresNonDeterministicPackages(t *testing.T) {
	linttest.Run(t, lint.MapIterAnalyzer, "cloudmirror/internal/other")
}

func TestUnjustifiedSuppressionIsAFinding(t *testing.T) {
	findings := linttest.Findings(t, lint.MapIterAnalyzer, "cloudmirror/internal/sim/unjustified")
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the empty justification, not the range): %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Message, "requires a non-empty justification") {
		t.Fatalf("finding %q does not report the empty justification", findings[0].Message)
	}
}
