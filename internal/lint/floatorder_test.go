package lint_test

import (
	"testing"

	"cloudmirror/internal/lint"
	"cloudmirror/internal/lint/linttest"
)

// TestFloatOrder runs the analyzer over a fixture outside the
// deterministic package set: float folds over map order are flagged in
// every package.
func TestFloatOrder(t *testing.T) {
	linttest.Run(t, lint.FloatOrderAnalyzer, "cloudmirror/internal/report")
}
