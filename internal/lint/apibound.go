package lint

import (
	"go/ast"
	"sort"
	"strconv"
	"strings"

	"cloudmirror/internal/lint/analysis"
)

// APIBoundAnalyzer enforces the public-API boundary rules that
// scripts/api-check.sh used to grep for, on the real import graph and
// the type checker's resolved references. Each BoundaryRule in
// boundaryRules is checked three ways:
//
//   - direct imports of a forbidden package, regardless of alias;
//   - references to banned objects of an otherwise-importable package
//     (rule place-admission) — resolved through go/types, so aliased
//     and dot imports that defeat a textual `place\.Admitter` grep are
//     still caught;
//   - transitive imports: a checked package reaching a forbidden
//     package through intermediaries that are not declared Gateways —
//     the laundering-helper shape grep over cmd/ and examples/ cannot
//     see at all.
//
// Adding a boundary is one entry in boundaryRules (config.go). There
// is deliberately no suppression directive: the boundary is absolute,
// and sanctioned wrappers are declared as rule data, not annotated at
// use sites.
var APIBoundAnalyzer = &analysis.Analyzer{
	Name: "apibound",
	Doc:  "enforce the guarantee public-API boundary on the real import graph",
	Run:  runAPIBound,
}

func runAPIBound(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	specs := importSpecs(pass)
	for i := range boundaryRules {
		rule := &boundaryRules[i]
		if !underAny(path, rule.Checked) || underAny(path, rule.Allowed) {
			continue
		}
		checkDirect(pass, rule, specs)
		checkObjects(pass, rule)
		checkTransitive(pass, rule, specs)
	}
	return nil, nil
}

// importSpecs collects the package's import specs keyed by path.
func importSpecs(pass *analysis.Pass) map[string]*ast.ImportSpec {
	specs := map[string]*ast.ImportSpec{}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err == nil {
				specs[p] = spec
			}
		}
	}
	return specs
}

// checkDirect reports direct imports of a forbidden package.
func checkDirect(pass *analysis.Pass, rule *BoundaryRule, specs map[string]*ast.ImportSpec) {
	for _, forbidden := range rule.Forbidden {
		if spec, ok := specs[forbidden]; ok {
			pass.Reportf(spec.Pos(),
				"import of %s breaches the %s boundary: %s",
				forbidden, rule.Name, rule.Hint)
		}
	}
}

// checkObjects reports references to banned objects, however the
// defining package was imported.
func checkObjects(pass *analysis.Pass, rule *BoundaryRule) {
	if len(rule.Objects) == 0 {
		return
	}
	for id, obj := range pass.TypesInfo.Uses {
		pkg := obj.Pkg()
		if pkg == nil {
			continue
		}
		banned := rule.Objects[pkg.Path()]
		if len(banned) == 0 || obj.Parent() != pkg.Scope() {
			continue
		}
		for _, name := range banned {
			if obj.Name() == name {
				pass.Reportf(id.Pos(),
					"reference to %s.%s breaches the %s boundary: %s",
					pkg.Path(), name, rule.Name, rule.Hint)
				break
			}
		}
	}
}

// checkTransitive walks the module import graph from the checked
// package, stopping at declared gateways and allowed packages, and
// reports any path that reaches a forbidden package. Requires the
// full-module graph the standalone driver supplies; under the
// unitchecker (one compilation unit at a time) it degrades to the
// direct checks above.
func checkTransitive(pass *analysis.Pass, rule *BoundaryRule, specs map[string]*ast.ImportSpec) {
	if pass.ModuleImports == nil || len(rule.Forbidden) == 0 {
		return
	}
	if _, ok := pass.ModuleImports(pass.Pkg.Path()); !ok {
		return
	}
	forbidden := map[string]bool{}
	for _, f := range rule.Forbidden {
		forbidden[f] = true
	}
	blocked := func(p string) bool {
		return underAny(p, rule.Gateways) || underAny(p, rule.Allowed)
	}
	for _, imp := range sortedImportPaths(specs) {
		if forbidden[imp] || blocked(imp) {
			continue // direct breaches reported by checkDirect
		}
		if chain := findPath(pass, imp, forbidden, blocked); chain != nil {
			spec := specs[imp]
			pass.Reportf(spec.Pos(),
				"import of %s reaches %s (via %s) breaching the %s boundary: %s",
				imp, chain[len(chain)-1], strings.Join(chain, " -> "), rule.Name, rule.Hint)
		}
	}
}

// sortedImportPaths returns the spec keys in deterministic order.
func sortedImportPaths(specs map[string]*ast.ImportSpec) []string {
	paths := make([]string, 0, len(specs))
	for p := range specs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// findPath runs a BFS from start over the module import graph, not
// descending into blocked packages, and returns the shortest chain
// (start ... forbidden) if one exists.
func findPath(pass *analysis.Pass, start string, forbidden map[string]bool, blocked func(string) bool) []string {
	type node struct {
		path string
		prev *node
	}
	visited := map[string]bool{start: true}
	queue := []*node{{path: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if forbidden[cur.path] {
			var chain []string
			for n := cur; n != nil; n = n.prev {
				chain = append([]string{n.path}, chain...)
			}
			return chain
		}
		deps, ok := pass.ModuleImports(cur.path)
		if !ok {
			continue
		}
		for _, d := range deps {
			if visited[d] || blocked(d) {
				continue
			}
			visited[d] = true
			queue = append(queue, &node{path: d, prev: cur})
		}
	}
	return nil
}
