// Package linttest runs cloudlint analyzers over fixture packages and
// matches the reported findings against `// want "regex"` comments — a
// stdlib-only analogue of golang.org/x/tools/go/analysis/analysistest,
// which the offline build cannot depend on.
//
// Fixture packages live in a GOPATH-style layout under the calling
// test's testdata directory: testdata/src/<import path>/*.go. Fixture
// import paths deliberately reuse the real module prefix
// ("cloudmirror/...") so package-gated analyzers (mapiter, nodrift,
// apibound) see realistic paths; during type checking, fixture packages
// shadow the real module's packages of the same path, and every other
// import resolves through the compiler export data of the enclosing
// module's build.
//
// A `// want` comment asserts that the analyzer reports a finding on
// that source line whose message matches the given regular expression
// (a Go string literal, quoted or backquoted; several per comment are
// allowed). Every finding must be claimed by a want and every want must
// claim a finding, one-to-one.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"cloudmirror/internal/lint/analysis"
	"cloudmirror/internal/lint/driver"
)

// Run loads the fixture packages at the given import paths (under
// testdata/src relative to the test's working directory), applies the
// analyzer to each, and diffs the findings against the fixtures'
// `// want` comments.
func Run(t *testing.T, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	findings, pkgs := load(t, a, paths...)
	wants := expectations(t, pkgs)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == f.Position.Filename && w.line == f.Position.Line &&
				w.rx.MatchString(f.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s (%s)", f.Position, f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no %s finding matched %q", w.file, w.line, a.Name, w.rx)
		}
	}
}

// Findings loads the fixture packages and returns the analyzer's raw
// findings, for tests asserting on counts or exact positions rather
// than `// want` comments.
func Findings(t *testing.T, a *analysis.Analyzer, paths ...string) []driver.Finding {
	t.Helper()
	findings, _ := load(t, a, paths...)
	return findings
}

// load type-checks the named fixture packages (plus their fixture
// dependencies) and runs the analyzer over the named ones.
func load(t *testing.T, a *analysis.Analyzer, paths ...string) ([]driver.Finding, []*driver.Package) {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("resolving testdata/src: %v", err)
	}
	l := &loader{
		src:     src,
		fset:    token.NewFileSet(),
		pkgs:    map[string]*driver.Package{},
		loading: map[string]bool{},
	}
	l.std = driver.ExportImporter(l.fset, func(path string) (string, bool) {
		exp, ok := stdExports(t)[path]
		return exp, ok
	})
	var roots []*driver.Package
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		if pkg == nil {
			t.Fatalf("no fixture package %s under %s", path, src)
		}
		roots = append(roots, pkg)
	}
	findings, err := driver.Run(roots, []*analysis.Analyzer{a}, l.moduleImports)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return findings, roots
}

// loader type-checks fixture packages on demand, recursing through
// their fixture imports and falling back to export data for the rest.
type loader struct {
	src     string
	fset    *token.FileSet
	pkgs    map[string]*driver.Package
	loading map[string]bool
	std     types.Importer
}

// load parses and type-checks the fixture package at the given import
// path, or returns (nil, nil) when no fixture directory exists.
func (l *loader) load(path string) (*driver.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil // not a fixture package
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("fixture import cycle at %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := driver.NewInfo()
	conf := &types.Config{Importer: l, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			if p, err := strconv.Unquote(spec.Path.Value); err == nil {
				imports = append(imports, p)
			}
		}
	}
	sort.Strings(imports)
	pkg := &driver.Package{
		ImportPath: path,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Imports:    imports,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: fixture packages shadow same-path
// module packages; everything else resolves through export data.
func (l *loader) Import(path string) (*types.Package, error) {
	pkg, err := l.load(path)
	if err != nil {
		return nil, err
	}
	if pkg != nil {
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// moduleImports is the analysis.Pass ModuleImports callback over the
// fixture import graph: module-internal direct imports of each loaded
// fixture package.
func (l *loader) moduleImports(path string) ([]string, bool) {
	pkg, ok := l.pkgs[path]
	if !ok {
		return nil, false
	}
	var deps []string
	for _, imp := range pkg.Imports {
		if imp == "cloudmirror" || strings.HasPrefix(imp, "cloudmirror/") {
			deps = append(deps, imp)
		}
	}
	return deps, true
}

var (
	stdOnce sync.Once
	stdMap  map[string]string
	stdErr  error
)

// stdExports maps import paths to compiler export-data files, built
// once per test binary by listing the enclosing module's dependency
// closure (plus the handful of extra standard packages fixtures use).
func stdExports(t *testing.T) map[string]string {
	t.Helper()
	stdOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			stdErr = fmt.Errorf("go env GOMOD: %v", err)
			return
		}
		root := filepath.Dir(strings.TrimSpace(string(out)))
		ix, err := driver.ListIndex(root, "./...",
			"errors", "fmt", "math/rand", "os", "sort", "strings", "time")
		if err != nil {
			stdErr = err
			return
		}
		stdMap = map[string]string{}
		for path, lp := range ix.Pkgs {
			if lp.Export != "" {
				stdMap[path] = lp.Export
			}
		}
	})
	if stdErr != nil {
		t.Fatalf("loading export data: %v", stdErr)
	}
	return stdMap
}

// wantToken matches one Go string literal (quoted or backquoted) in the
// tail of a // want comment.
var wantToken = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// expectation is one parsed // want pattern, anchored to a file line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	used bool
}

// expectations parses the `// want` comments of every file in pkgs.
func expectations(t *testing.T, pkgs []*driver.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//")
					if !ok {
						continue
					}
					rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					toks := wantToken.FindAllString(rest, -1)
					if len(toks) == 0 {
						t.Fatalf("%s: // want comment with no string literal", pos)
					}
					for _, tok := range toks {
						pat, err := strconv.Unquote(tok)
						if err != nil {
							t.Fatalf("%s: bad want literal %s: %v", pos, tok, err)
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
					}
				}
			}
		}
	}
	return wants
}
