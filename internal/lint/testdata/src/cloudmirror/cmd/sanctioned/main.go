// Command sanctioned goes through the guarantee front door, which is a
// declared gateway: reaching cluster and place through it is the
// sanctioned route and must report nothing.
package main

import "cloudmirror/guarantee"

func main() {
	_ = guarantee.New()
	_ = guarantee.Service()
}
