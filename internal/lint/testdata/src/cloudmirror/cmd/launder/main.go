// Command launder reaches the cluster through an intermediary helper:
// no grep rule ever fires, the import-graph walk does.
package main

import "cloudmirror/internal/helper" // want `reaches cloudmirror/internal/cluster \(via cloudmirror/internal/helper -> cloudmirror/internal/cluster\) breaching the cluster boundary`

func main() { _ = helper.Boot() }
