// Command direct imports the shard cluster straight across the
// boundary: the shape grep rule 1 also catches.
package main

import "cloudmirror/internal/cluster" // want `import of cloudmirror/internal/cluster breaches the cluster boundary`

func main() { _ = cluster.New() }
