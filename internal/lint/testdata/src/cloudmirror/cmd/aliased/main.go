// Command aliased reaches the banned admitter through an import alias:
// invisible to the textual `place\.NewAdmitter` grep, resolved by the
// type checker regardless of spelling.
package main

import pl "cloudmirror/internal/place"

func main() {
	adm := pl.NewAdmitter() // want `reference to cloudmirror/internal/place\.NewAdmitter breaches the place-admission boundary`
	_ = adm
	_ = pl.Score() // data helpers stay usable
}
