// Command placers imports a placer package directly: the shape grep
// rule 3 also catches.
package main

import "cloudmirror/internal/place/oktopus" // want `import of cloudmirror/internal/place/oktopus breaches the placer boundary`

func main() { _ = oktopus.New() }
