// Command enforcei imports the emulator directly: the shape grep
// rule 4 also catches.
package main

import "cloudmirror/internal/netem" // want `import of cloudmirror/internal/netem breaches the enforcement boundary`

func main() { _ = netem.ErrBadInput }
