// Command plain names the admitter with the default package name: the
// shape grep rule 2 also catches.
package main

import "cloudmirror/internal/place"

func main() {
	adm := place.NewAdmitter() // want `reference to cloudmirror/internal/place\.NewAdmitter breaches the place-admission boundary`
	_ = adm
}
