// Command bwd is on the wal rule's allow list (it surfaces the
// -wal-dir flag in the real tree): its direct WAL import is sanctioned.
package main

import "cloudmirror/internal/wal"

func main() { _ = wal.Open() }
