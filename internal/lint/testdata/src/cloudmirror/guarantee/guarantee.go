// Package guarantee is the sanctioned front door: a declared gateway
// the apibound transitive walk does not descend into.
package guarantee

import (
	"cloudmirror/internal/cluster"
	"cloudmirror/internal/place"
)

// New wraps the cluster constructor.
func New() int { return cluster.New() }

// Service wraps the admitter.
func Service() *place.Admitter { return place.NewAdmitter() }
