// Package place is a test double of the placement package: the banned
// admission machinery plus one data helper that stays usable.
package place

// Admitter stands in for the serialized admission path.
type Admitter struct{}

// NewAdmitter constructs the admitter binaries must not touch.
func NewAdmitter() *Admitter { return &Admitter{} }

// Score is a data helper outside the banned-object list.
func Score() int { return 0 }
