// Package oktopus is a test double of one placer package, for the
// placer boundary rule.
package oktopus

// New constructs the placer directly.
func New() int { return 2 }
