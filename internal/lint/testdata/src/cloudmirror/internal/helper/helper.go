// Package helper launders a cluster dependency behind an intermediary:
// a cmd importing this package reaches internal/cluster transitively,
// in a way a textual grep over cmd/ and examples/ never sees.
package helper

import "cloudmirror/internal/cluster"

// Boot reaches the cluster on behalf of its importers.
func Boot() int { return cluster.New() }
