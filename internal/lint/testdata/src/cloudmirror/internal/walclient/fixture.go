// Package walclient imports the write-ahead log from outside the
// sanctioned surface: the wal rule checks every module package, not
// just cmd and examples.
package walclient

import "cloudmirror/internal/wal" // want `import of cloudmirror/internal/wal breaches the wal boundary`

// Replay touches the WAL directly.
func Replay() int { return wal.Open() }
