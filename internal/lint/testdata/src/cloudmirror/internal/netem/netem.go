// Package netem is a test double of the real fluid-network emulator:
// just enough surface (the ErrBadInput taxonomy root) for the errwrap
// and apibound fixtures.
package netem

import "errors"

// ErrBadInput is the root of the input-validation error taxonomy.
var ErrBadInput = errors.New("netem: bad input")
