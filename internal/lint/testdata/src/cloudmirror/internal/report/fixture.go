// Package report exercises the floatorder analyzer outside the
// deterministic package set: float folds over map order are flagged in
// every package, because emitted tables are diffed byte-for-byte too.
package report

import "sort"

// Total folds floats in map order: ULP jitter between runs.
func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation into sum depends on the iteration order of map m`
	}
	return sum
}

// Rebalance is the same fold spelled x = x + v.
func Rebalance(m map[string]float64, base float64) float64 {
	for _, v := range m {
		base = base + v // want `float accumulation into base depends on the iteration order of map m`
	}
	return base
}

// TotalSorted folds over sorted keys: the fix.
func TotalSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// PerKey resets its accumulator every iteration: an iteration-local
// fold cannot leak map order across iterations.
func PerKey(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64)
	for k, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}

// Tolerated justifies the fold on the accumulating statement itself.
func Tolerated(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //cloudlint:ordered downstream comparison uses a 1e-9 tolerance, ULP drift acceptable
	}
	return sum
}
