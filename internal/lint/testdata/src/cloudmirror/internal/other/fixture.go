// Package other sits outside the deterministic set and does not import
// netem: mapiter, nodrift and errwrap must all stay silent here.
package other

import (
	"errors"
	"time"
)

// Collect leaks map order, legally: this package makes no
// byte-identical-output promise.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Stamp reads the wall clock outside the deterministic set.
func Stamp() time.Time { return time.Now() }

// Fresh returns an unwrapped error without importing netem.
func Fresh() error { return errors.New("other: fresh") }
