// Package cluster is a test double of the sharded admission cluster,
// the implementation detail the cluster boundary rule protects.
package cluster

// New stands in for the shard-cluster constructor.
func New() int { return 1 }
