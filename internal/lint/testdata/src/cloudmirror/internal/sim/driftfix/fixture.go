// Package driftfix exercises the nodrift analyzer inside a
// deterministic package path.
package driftfix

import (
	"math/rand"
	"os"
	"time"
)

// Bad reads ambient state a deterministic replay cannot reproduce.
func Bad() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	_ = os.Getenv("SEED")    // want `os\.Getenv reads the ambient environment`
	_ = rand.Intn(4)         // want `math/rand\.Intn uses the process-global RNG`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// Seeded builds and draws from an injected RNG: constructors and
// methods are the fix, not the bug.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(4)
}

// Measured justifies a measurement-only wall-clock read.
func Measured() time.Time {
	return time.Now() //cloudlint:wallclock benchmark timing reported, never branches simulated state
}
