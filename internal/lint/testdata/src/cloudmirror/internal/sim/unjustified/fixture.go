// Package unjustified suppresses mapiter without saying why: the empty
// justification must itself be the (only) finding.
package unjustified

// Collect hides an order-sensitive range behind a bare directive.
func Collect(m map[string]int) []string {
	var out []string
	//cloudlint:ordered
	for k := range m {
		out = append(out, k)
	}
	return out
}
