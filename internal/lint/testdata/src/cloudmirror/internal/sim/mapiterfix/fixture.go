// Package mapiterfix exercises the mapiter analyzer inside a
// deterministic package path (a subpackage of internal/sim).
package mapiterfix

import "sort"

// CollectUnsorted leaks map order into the returned slice.
func CollectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m is iteration-order sensitive`
		out = append(out, k)
	}
	return out
}

// Emit is order-sensitive: each iteration has an external effect.
func Emit(m map[string]int, log func(string)) {
	for k := range m { // want `range over map m is iteration-order sensitive`
		log(k)
	}
}

// CollectSorted is the sanctioned collect-then-sort shape.
func CollectSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Count accumulates integers: exact and commutative, so order-free.
func Count(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert writes each iteration to a distinct key of the destination.
func Invert(m map[string]int) map[string]bool {
	dst := make(map[string]bool)
	for k := range m {
		dst[k] = true
	}
	return dst
}

// TierTotals accumulates integers through a nested (non-map) range.
func TierTotals(m map[string][]int) []int {
	totals := make([]int, 8)
	for _, counts := range m {
		for t, k := range counts {
			totals[t] += k
		}
	}
	return totals
}

// Justified carries an order argument the analyzer honors.
func Justified(m map[string]int, log func(string)) {
	//cloudlint:ordered the log sink deduplicates and is order-free by contract
	for k := range m {
		log(k)
	}
}
