// Package flows exercises the errwrap analyzer: it imports
// internal/netem, so its returned errors must keep the typed taxonomy
// matchable with errors.Is.
package flows

import (
	"errors"
	"fmt"

	"cloudmirror/internal/netem"
)

// ErrStall is a package-level sentinel: declarations are the taxonomy,
// not returns, and are never flagged.
var ErrStall = errors.New("flows: stall")

// Wrapped returns errors that keep errors.Is working.
func Wrapped(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: n = %d", netem.ErrBadInput, n)
	}
	if n == 0 {
		return ErrStall
	}
	return nil
}

// Bare returns fresh unwrapped errors: the taxonomy decays to strings.
func Bare(n int) error {
	if n < 0 {
		return errors.New("flows: negative n") // want `returned errors\.New error does not wrap a typed sentinel`
	}
	return fmt.Errorf("flows: odd n = %d", n) // want `returned fmt\.Errorf error without %w does not wrap a typed sentinel`
}

// Dynamic cannot be proven to wrap; the justification covers it.
func Dynamic(format string, n int) error {
	//cloudlint:unwrapped CLI-facing diagnostic; no caller matches on it
	return fmt.Errorf(format, n)
}
