// Package wal is a test double of the write-ahead log, importable only
// through the sanctioned surface.
package wal

// Open stands in for the WAL constructor.
func Open() int { return 3 }
