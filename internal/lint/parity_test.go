package lint_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cloudmirror/internal/lint"
	"cloudmirror/internal/lint/linttest"
)

// grepRules reproduces, verbatim, the five regexes of the retired
// scripts/api-check.sh grep body. The parity tests prove that every
// breach the greps caught is still caught by apibound, and that the
// breaches the greps provably missed (aliased imports, laundering
// helpers) are caught now.
var grepRules = map[string]*regexp.Regexp{
	"cluster":         regexp.MustCompile(`"cloudmirror/internal/cluster"`),
	"place-admission": regexp.MustCompile(`place\.(NewAdmitter|NewOptimisticAdmitter|Admitter|OptimisticAdmitter|Admission|Grant)\b`),
	"placer":          regexp.MustCompile(`"cloudmirror/internal/place/(cloudmirror|oktopus|secondnet)"`),
	"enforcement":     regexp.MustCompile(`"cloudmirror/internal/(enforce|netem|dataplane)"`),
	"wal":             regexp.MustCompile(`"cloudmirror/internal/wal"`),
}

// fixtureSource reads one fixture file's raw text, the input the old
// greps operated on.
func fixtureSource(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "src", filepath.FromSlash(path)))
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	return string(data)
}

// ruleFindings runs apibound over one fixture package and returns the
// findings mentioning the named rule.
func ruleFindings(t *testing.T, pkg, rule string) []string {
	t.Helper()
	var msgs []string
	for _, f := range linttest.Findings(t, lint.APIBoundAnalyzer, pkg) {
		if strings.Contains(f.Message, "the "+rule+" boundary") {
			msgs = append(msgs, f.Message)
		}
	}
	return msgs
}

// TestAPIBoundParityWithGrep checks, rule by rule, that a fixture the
// old grep caught is also caught by the analyzer.
func TestAPIBoundParityWithGrep(t *testing.T) {
	cases := []struct {
		rule string
		pkg  string
		file string
	}{
		{"cluster", "cloudmirror/cmd/direct", "cloudmirror/cmd/direct/main.go"},
		{"place-admission", "cloudmirror/cmd/plain", "cloudmirror/cmd/plain/main.go"},
		{"placer", "cloudmirror/cmd/placers", "cloudmirror/cmd/placers/main.go"},
		{"enforcement", "cloudmirror/cmd/enforcei", "cloudmirror/cmd/enforcei/main.go"},
		{"wal", "cloudmirror/internal/walclient", "cloudmirror/internal/walclient/fixture.go"},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			if !grepRules[tc.rule].MatchString(fixtureSource(t, tc.file)) {
				t.Fatalf("grep rule %s does not match %s: the parity fixture no longer reproduces the grep-caught shape", tc.rule, tc.file)
			}
			if msgs := ruleFindings(t, tc.pkg, tc.rule); len(msgs) == 0 {
				t.Fatalf("apibound reports no %s finding for %s, but the old grep caught it", tc.rule, tc.pkg)
			}
		})
	}
}

// TestGrepMissesAliasedImport proves the case the issue names: an
// aliased import (pl.NewAdmitter) defeats the textual
// place\.NewAdmitter grep but not the type-resolved object check.
func TestGrepMissesAliasedImport(t *testing.T) {
	src := fixtureSource(t, "cloudmirror/cmd/aliased/main.go")
	if grepRules["place-admission"].MatchString(src) {
		t.Fatalf("grep unexpectedly matches the aliased fixture; it no longer demonstrates the miss")
	}
	if msgs := ruleFindings(t, "cloudmirror/cmd/aliased", "place-admission"); len(msgs) == 0 {
		t.Fatalf("apibound misses the aliased admitter reference grep also misses")
	}
}

// TestGrepMissesLaunderedImport proves the transitive case: reaching
// the cluster through an intermediary helper matches none of the five
// greps, but the import-graph walk reports the chain.
func TestGrepMissesLaunderedImport(t *testing.T) {
	src := fixtureSource(t, "cloudmirror/cmd/launder/main.go")
	for rule, re := range grepRules {
		if re.MatchString(src) {
			t.Fatalf("grep rule %s unexpectedly matches the laundering fixture", rule)
		}
	}
	if msgs := ruleFindings(t, "cloudmirror/cmd/launder", "cluster"); len(msgs) == 0 {
		t.Fatalf("apibound misses the laundered cluster import every grep also misses")
	}
}

// TestGrepFalseExclusionStaysSanctioned pins the wal allow list:
// cmd/bwd's direct WAL import was grep-excluded by path and stays
// sanctioned as rule data.
func TestGrepFalseExclusionStaysSanctioned(t *testing.T) {
	src := fixtureSource(t, "cloudmirror/cmd/bwd/main.go")
	if !grepRules["wal"].MatchString(src) {
		t.Fatalf("cmd/bwd fixture no longer imports the WAL")
	}
	if msgs := ruleFindings(t, "cloudmirror/cmd/bwd", "wal"); len(msgs) != 0 {
		t.Fatalf("apibound flags the allow-listed cmd/bwd WAL import: %v", msgs)
	}
}
