package ha

import (
	"math"
	"testing"

	"cloudmirror/internal/place"
	"cloudmirror/internal/topology"
)

func tree() *topology.Tree {
	return topology.New(topology.Spec{
		SlotsPerServer: 4,
		Levels: []topology.LevelSpec{
			{Name: "server", Fanout: 4, Uplink: 100},
			{Name: "tor", Fanout: 2, Uplink: 100},
		},
	})
}

func TestWCSSingleDomain(t *testing.T) {
	tr := tree()
	pl := place.Placement{}
	pl.Add(tr.Servers()[0], 1, 0, 4) // whole tier on one server
	w := WCS(tr, pl, 1, 0)
	if w[0] != 0 {
		t.Errorf("WCS = %g, want 0 for full colocation", w[0])
	}
}

func TestWCSEvenSpread(t *testing.T) {
	tr := tree()
	pl := place.Placement{}
	for i := 0; i < 4; i++ {
		pl.Add(tr.Servers()[i], 1, 0, 1)
	}
	w := WCS(tr, pl, 1, 0)
	if math.Abs(w[0]-0.75) > 1e-9 {
		t.Errorf("WCS = %g, want 0.75 for 4-way spread", w[0])
	}
}

func TestWCSWorstDomainBinds(t *testing.T) {
	tr := tree()
	pl := place.Placement{}
	pl.Add(tr.Servers()[0], 1, 0, 3)
	pl.Add(tr.Servers()[1], 1, 0, 1)
	w := WCS(tr, pl, 1, 0)
	if math.Abs(w[0]-0.25) > 1e-9 { // losing the 3-VM server leaves 1/4
		t.Errorf("WCS = %g, want 0.25", w[0])
	}
}

func TestWCSHigherLevelDomains(t *testing.T) {
	tr := tree()
	pl := place.Placement{}
	// Spread over two servers under the SAME ToR: server-level WCS is
	// 0.5 but ToR-level WCS is 0.
	pl.Add(tr.Servers()[0], 1, 0, 2)
	pl.Add(tr.Servers()[1], 1, 0, 2)
	if w := WCS(tr, pl, 1, 0); math.Abs(w[0]-0.5) > 1e-9 {
		t.Errorf("server-level WCS = %g, want 0.5", w[0])
	}
	if w := WCS(tr, pl, 1, 1); w[0] != 0 {
		t.Errorf("tor-level WCS = %g, want 0", w[0])
	}
}

func TestWCSPerTierAndUndefined(t *testing.T) {
	tr := tree()
	pl := place.Placement{}
	pl.Add(tr.Servers()[0], 3, 0, 2)
	pl.Add(tr.Servers()[1], 3, 0, 2)
	pl.Add(tr.Servers()[2], 3, 1, 1)
	// tier 2 has no VMs (external component).
	w := WCS(tr, pl, 3, 0)
	if math.Abs(w[0]-0.5) > 1e-9 || w[1] != 0 || w[2] != -1 {
		t.Errorf("WCS = %v, want [0.5 0 -1]", w)
	}
	mean, ok := Mean(w)
	if !ok || math.Abs(mean-0.25) > 1e-9 {
		t.Errorf("Mean = (%g,%v), want (0.25,true)", mean, ok)
	}
	if _, ok := Mean([]float64{-1, -1}); ok {
		t.Error("Mean of undefined entries reported ok")
	}
}
