// Package ha computes the worst-case survivability (WCS) availability
// metric of §4.5: for each application tier, the smallest fraction of its
// VMs that remain functional when any single fault domain (a subtree at
// the anti-affinity level, servers by default) fails.
package ha

import (
	"cloudmirror/internal/place"
	"cloudmirror/internal/topology"
)

// WCS returns the per-tier worst-case survivability of a placement with
// fault domains at topology level laa. A tier placed entirely inside one
// domain has WCS 0; a tier spread evenly over d domains has WCS ≈ 1−1/d.
// Tiers with no placed VMs report -1 (undefined) so callers can skip
// external components.
func WCS(tree *topology.Tree, pl place.Placement, tiers, laa int) []float64 {
	totals := pl.TierTotals(tiers)

	// Aggregate per-domain counts.
	domains := make(map[topology.NodeID][]int)
	for server, counts := range pl {
		d := tree.Ancestor(server, laa)
		agg := domains[d]
		if agg == nil {
			agg = make([]int, tiers)
			domains[d] = agg
		}
		for t, k := range counts {
			agg[t] += k
		}
	}

	wcs := make([]float64, tiers)
	for t := range wcs {
		if totals[t] == 0 {
			wcs[t] = -1
			continue
		}
		worst := 0
		for _, agg := range domains {
			if agg[t] > worst {
				worst = agg[t]
			}
		}
		wcs[t] = float64(totals[t]-worst) / float64(totals[t])
	}
	return wcs
}

// Mean returns the average of the defined (non-negative) entries of a
// per-tier WCS slice, and whether any entry was defined.
func Mean(wcs []float64) (float64, bool) {
	var sum float64
	n := 0
	for _, w := range wcs {
		if w >= 0 {
			sum += w
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}
