package ha

import (
	"math/rand"

	"cloudmirror/internal/place"
	"cloudmirror/internal/topology"
)

// This file adds failure injection: instead of trusting the WCS formula,
// actually fail fault domains and measure what survives. Experiments and
// property tests use it to validate that guaranteed placements deliver
// the promised availability.

// SurvivingFraction fails the single fault domain `failed` (a node at
// any level — every server beneath it dies) and returns, per tier, the
// fraction of VMs that remain. Tiers with no VMs report -1.
func SurvivingFraction(tree *topology.Tree, pl place.Placement, tiers int, failed topology.NodeID) []float64 {
	totals := pl.TierTotals(tiers)
	lost := make([]int, tiers)
	for server, counts := range pl {
		if !tree.Contains(failed, server) {
			continue
		}
		for t, k := range counts {
			lost[t] += k
		}
	}
	out := make([]float64, tiers)
	for t := range out {
		if totals[t] == 0 {
			out[t] = -1
			continue
		}
		out[t] = float64(totals[t]-lost[t]) / float64(totals[t])
	}
	return out
}

// VerifyWCS exhaustively fails every fault domain at level laa and
// checks that each tier's surviving fraction never drops below the
// claimed WCS. It returns the first violating (domain, tier) on failure.
func VerifyWCS(tree *topology.Tree, pl place.Placement, tiers, laa int) (ok bool, domain topology.NodeID, tier int) {
	claimed := WCS(tree, pl, tiers, laa)
	for _, d := range tree.NodesAtLevel(laa) {
		surviving := SurvivingFraction(tree, pl, tiers, d)
		for t := 0; t < tiers; t++ {
			if claimed[t] < 0 {
				continue
			}
			if surviving[t] < claimed[t]-1e-9 {
				return false, d, t
			}
		}
	}
	return true, topology.NoNode, -1
}

// FailureReport summarizes a randomized failure campaign.
type FailureReport struct {
	// Trials is the number of injected single-domain failures.
	Trials int
	// MeanSurviving averages the surviving fraction over trials and
	// tiers (defined tiers only).
	MeanSurviving float64
	// WorstSurviving is the minimum surviving fraction observed.
	WorstSurviving float64
	// Violations counts trials where some tier fell below the claimed
	// WCS — always 0 if the WCS computation is sound.
	Violations int
}

// InjectFailures runs a randomized single-failure campaign: trials
// uniformly-chosen fault domains at level laa are failed (one at a
// time), and survival is compared against the claimed WCS.
func InjectFailures(tree *topology.Tree, pl place.Placement, tiers, laa, trials int, seed int64) FailureReport {
	r := rand.New(rand.NewSource(seed))
	domains := tree.NodesAtLevel(laa)
	claimed := WCS(tree, pl, tiers, laa)

	rep := FailureReport{Trials: trials, WorstSurviving: 1}
	var sum float64
	samples := 0
	for i := 0; i < trials; i++ {
		d := domains[r.Intn(len(domains))]
		surviving := SurvivingFraction(tree, pl, tiers, d)
		violated := false
		for t := 0; t < tiers; t++ {
			if surviving[t] < 0 {
				continue
			}
			sum += surviving[t]
			samples++
			if surviving[t] < rep.WorstSurviving {
				rep.WorstSurviving = surviving[t]
			}
			if claimed[t] >= 0 && surviving[t] < claimed[t]-1e-9 {
				violated = true
			}
		}
		if violated {
			rep.Violations++
		}
	}
	if samples > 0 {
		rep.MeanSurviving = sum / float64(samples)
	}
	return rep
}
