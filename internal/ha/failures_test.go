package ha

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cloudmirror/internal/place"
	"cloudmirror/internal/place/cloudmirror"
	"cloudmirror/internal/tag"
	"cloudmirror/internal/topology"
)

func TestSurvivingFraction(t *testing.T) {
	tr := tree()
	pl := place.Placement{}
	pl.Add(tr.Servers()[0], 2, 0, 3)
	pl.Add(tr.Servers()[1], 2, 0, 1)
	pl.Add(tr.Servers()[1], 2, 1, 2)

	s := SurvivingFraction(tr, pl, 2, tr.Servers()[0])
	if s[0] != 0.25 || s[1] != 1 {
		t.Errorf("fail server0: surviving = %v, want [0.25 1]", s)
	}
	// Failing the whole ToR kills everything beneath it.
	s = SurvivingFraction(tr, pl, 2, tr.Parent(tr.Servers()[0]))
	if s[0] != 0 || s[1] != 0 {
		t.Errorf("fail tor: surviving = %v, want [0 0]", s)
	}
	// Empty tier undefined.
	s = SurvivingFraction(tr, pl, 3, tr.Servers()[0])
	if len(s) != 3 || s[2] != -1 {
		t.Errorf("undefined tier = %v", s)
	}
}

// TestVerifyWCSExhaustive: the WCS formula is exactly the worst single
// failure — exhaustive injection can never find a violation, and the
// worst observed survival equals the claimed WCS.
func TestVerifyWCSExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := tree()
		pl := place.Placement{}
		for i := 0; i < 8; i++ {
			s := tr.Servers()[r.Intn(len(tr.Servers()))]
			if tr.SlotsFree(s) > 0 {
				pl.Add(s, 2, r.Intn(2), 1)
			}
		}
		if pl.VMs() == 0 {
			return true
		}
		ok, _, _ := VerifyWCS(tr, pl, 2, 0)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestInjectFailuresOnGuaranteedPlacement: a CM+HA placement sustains
// every injected failure at or above the required WCS.
func TestInjectFailuresOnGuaranteedPlacement(t *testing.T) {
	tr := topology.New(topology.Spec{
		SlotsPerServer: 8,
		Levels: []topology.LevelSpec{
			{Name: "server", Fanout: 8, Uplink: 100_000},
			{Name: "tor", Fanout: 2, Uplink: 100_000},
		},
	})
	g := tag.New("svc")
	a := g.AddTier("a", 12)
	b := g.AddTier("b", 8)
	g.AddEdge(a, b, 50, 75)
	g.AddSelfLoop(b, 40)

	p := cloudmirror.New(tr)
	res, err := p.Place(&place.Request{Graph: g, Model: g, HA: place.HASpec{RWCS: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Release()

	if ok, d, tier := VerifyWCS(tr, res.Placement(), g.Tiers(), 0); !ok {
		t.Fatalf("WCS formula violated at domain %d tier %d", d, tier)
	}
	rep := InjectFailures(tr, res.Placement(), g.Tiers(), 0, 200, 1)
	if rep.Violations != 0 {
		t.Errorf("%d violations in failure campaign", rep.Violations)
	}
	if rep.WorstSurviving < 0.5-1e-9 {
		t.Errorf("worst surviving fraction %g below the 0.5 guarantee", rep.WorstSurviving)
	}
	if rep.MeanSurviving < rep.WorstSurviving {
		t.Error("mean below worst")
	}
	if rep.Trials != 200 {
		t.Error("trial count wrong")
	}
}
