package tag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHoseSavingFeasible(t *testing.T) {
	// Eq. 2: saving iff strictly more than half the tier fits.
	cases := []struct {
		total, inside int
		want          bool
	}{
		{10, 5, false},
		{10, 6, true},
		{1, 1, true},
		{3, 2, true},
		{3, 1, false},
		{4, 2, false},
	}
	for _, c := range cases {
		if got := HoseSavingFeasible(c.total, c.inside); got != c.want {
			t.Errorf("HoseSavingFeasible(%d,%d) = %v, want %v", c.total, c.inside, got, c.want)
		}
	}
}

func TestTrunkSavingFeasible(t *testing.T) {
	// Eq. 6: more than half of either endpoint tier.
	cases := []struct {
		nf, nt, mf, mt int
		want           bool
	}{
		{10, 10, 5, 5, false},
		{10, 10, 6, 0, true},
		{10, 10, 0, 6, true},
		{4, 8, 3, 4, true},
		{4, 8, 2, 4, false},
	}
	for _, c := range cases {
		if got := TrunkSavingFeasible(c.nf, c.nt, c.mf, c.mt); got != c.want {
			t.Errorf("TrunkSavingFeasible(%d,%d,%d,%d) = %v, want %v", c.nf, c.nt, c.mf, c.mt, got, c.want)
		}
	}
}

// TestSelfLoopSavingMatchesEq2 checks that the hose saving is positive
// exactly when Eq. 2 holds and equals max(2nX-N,0)*SR per direction.
func TestSelfLoopSavingMatchesEq2(t *testing.T) {
	g := New("h")
	a := g.AddTier("a", 10)
	g.AddSelfLoop(a, 100)
	e := g.Edges()[0]
	for nx := 0; nx <= 10; nx++ {
		got := g.SelfLoopSaving(e, nx)
		want := 2 * float64(max(2*nx-10, 0)) * 100
		if !almostEq(got, want) {
			t.Errorf("nx=%d: saving=%g, want %g", nx, got, want)
		}
		if (got > 0) != HoseSavingFeasible(10, nx) {
			t.Errorf("nx=%d: saving positivity disagrees with Eq. 2", nx)
		}
	}
}

// TestEdgeSavingEq4 checks the trunk saving against Eq. 4 in the balanced
// case N^t·B_snd == N^t'·B_rcv the paper analyzes.
func TestEdgeSavingEq4(t *testing.T) {
	g := New("trunk")
	u := g.AddTier("u", 8)  // snd 50 -> total 400
	v := g.AddTier("v", 10) // rcv 40 -> total 400
	g.AddEdge(u, v, 50, 40)
	e := g.Edges()[0]

	for nux := 0; nux <= 8; nux++ {
		for nvx := 0; nvx <= 10; nvx++ {
			got := g.EdgeSaving(e, nux, nvx)
			// Outgoing direction (Eq. 4): max(NtX·Bsnd − (Nt'−Nt'X)·Brcv, 0).
			outSave := float64(nux)*50 - float64(10-nvx)*40
			if outSave < 0 {
				outSave = 0
			}
			// Incoming direction is symmetric.
			inSave := float64(nvx)*40 - float64(8-nux)*50
			if inSave < 0 {
				inSave = 0
			}
			if !almostEq(got, outSave+inSave) {
				t.Errorf("nux=%d nvx=%d: saving=%g, want %g", nux, nvx, got, outSave+inSave)
			}
			// Eq. 6 is necessary: saving > 0 implies the condition.
			if got > 0 && !TrunkSavingFeasible(8, 10, nux, nvx) {
				t.Errorf("nux=%d nvx=%d: positive saving but Eq. 6 violated", nux, nvx)
			}
		}
	}
}

// TestEdgeSavingZeroWorstCase: with the opposite tier entirely outside
// there is nothing to save.
func TestEdgeSavingZeroWorstCase(t *testing.T) {
	g := New("w")
	u := g.AddTier("u", 6)
	v := g.AddTier("v", 6)
	g.AddEdge(u, v, 10, 10)
	e := g.Edges()[0]
	for nux := 0; nux <= 6; nux++ {
		if s := g.EdgeSaving(e, nux, 0); s != 0 {
			t.Errorf("nux=%d nvx=0: saving=%g, want 0", nux, s)
		}
	}
}

// TestColocationSavingConsistent: the total saving equals the worst-case
// cut minus the actual cut, where the worst case evaluates each edge with
// the counterpart tier fully outside.
func TestColocationSavingConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		inside := randomInside(r, g)

		var worst float64
		for _, e := range g.edges {
			if e.SelfLoop() {
				// Spread worst case: all nX count as crossing.
				worst += 2 * float64(min(inside[e.From], g.TierSize(e.From))) * e.S
			} else {
				wOut := cappedMin(float64(inside[e.From])*e.S, outsideCap(g.tiers[e.To], 0, e.R))
				wIn := cappedMin(outsideCap(g.tiers[e.From], 0, e.S), float64(inside[e.To])*e.R)
				worst += wOut + wIn
			}
		}
		out, in := g.Cut(inside)
		return almostEq(g.ColocationSaving(inside), worst-(out+in))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSavingsNonNegativeMonotone: saving is non-negative and does not
// decrease as more VMs of an endpoint are colocated.
func TestSavingsNonNegativeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		if len(g.edges) == 0 {
			return true
		}
		e := g.edges[r.Intn(len(g.edges))]
		nf := r.Intn(g.TierSize(e.From) + 1)
		nt := r.Intn(g.TierSize(e.To) + 1)
		s := g.EdgeSaving(e, nf, nt)
		if s < 0 {
			return false
		}
		if nt < g.TierSize(e.To) && !e.SelfLoop() {
			if g.EdgeSaving(e, nf, nt+1) < s-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
