package tag

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// threeTier builds the Fig. 2(a) application: web, logic, db tiers of n
// VMs each, bidirectional trunks web<->logic (B1) and logic<->db (B2), and
// a db self-loop (B3).
func threeTier(n int, b1, b2, b3 float64) *Graph {
	g := New("three-tier")
	web := g.AddTier("web", n)
	logic := g.AddTier("logic", n)
	db := g.AddTier("db", n)
	g.AddBidirectional(web, logic, b1, b1)
	g.AddBidirectional(logic, db, b2, b2)
	g.AddSelfLoop(db, b3)
	return g
}

func TestValidate(t *testing.T) {
	g := threeTier(4, 500, 100, 50)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}

	bad := New("empty")
	if err := bad.Validate(); err == nil {
		t.Error("empty graph accepted")
	}

	bad = New("dup")
	bad.AddTier("a", 1)
	bad.AddTier("a", 1)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate tier name accepted: %v", err)
	}

	bad = New("zero")
	bad.AddTier("a", 0)
	if err := bad.Validate(); err == nil {
		t.Error("zero-size non-external tier accepted")
	}

	bad = New("neg")
	bad.AddTier("a", 2)
	bad.AddEdge(0, 0, 5, 5)
	bad.edges[0].R = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative guarantee accepted")
	}

	bad = New("extloop")
	e := bad.AddExternal("inet", 0)
	bad.AddSelfLoop(e, 1)
	if err := bad.Validate(); err == nil {
		t.Error("self-loop on external tier accepted")
	}

	bad = New("range")
	bad.AddTier("a", 1)
	bad.edges = append(bad.edges, Edge{From: 0, To: 3, S: 1, R: 1})
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestAddEdgeSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddEdge(u,u) with S != R did not panic")
		}
	}()
	g := New("x")
	a := g.AddTier("a", 2)
	g.AddEdge(a, a, 1, 2)
}

func TestSizesAndVMs(t *testing.T) {
	g := threeTier(5, 1, 1, 1)
	g.AddExternal("inet", 0)
	if got := g.VMs(); got != 15 {
		t.Errorf("VMs = %d, want 15", got)
	}
	want := []int{5, 5, 5, 0}
	got := g.Sizes()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sizes[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if g.TierIndex("logic") != 1 || g.TierIndex("nope") != -1 {
		t.Error("TierIndex lookup wrong")
	}
}

func TestEdgeAggregate(t *testing.T) {
	g := New("agg")
	u := g.AddTier("u", 10) // 10 VMs sending at 30
	v := g.AddTier("v", 5)  // 5 VMs receiving at 40
	g.AddEdge(u, v, 30, 40)
	// B(u->v) = min(30*10, 40*5) = min(300, 200) = 200.
	if got := g.EdgeAggregate(g.Edges()[0]); got != 200 {
		t.Errorf("EdgeAggregate = %g, want 200", got)
	}

	g.AddSelfLoop(v, 60)
	// Self-loop aggregate = SR*N/2 = 60*5/2 = 150.
	if got := g.EdgeAggregate(g.Edges()[1]); got != 150 {
		t.Errorf("self-loop aggregate = %g, want 150", got)
	}
	if got := g.AggregateBandwidth(); got != 350 {
		t.Errorf("AggregateBandwidth = %g, want 350", got)
	}
}

func TestEdgeAggregateUnboundedExternal(t *testing.T) {
	g := New("ext")
	u := g.AddTier("u", 4)
	inet := g.AddExternal("inet", 0)
	g.AddEdge(u, inet, 25, 25)
	// Unbounded receiver: aggregate = S*Nu = 100.
	if got := g.EdgeAggregate(g.Edges()[0]); got != 100 {
		t.Errorf("EdgeAggregate toward unbounded external = %g, want 100", got)
	}
	// AggregateBandwidth must not be polluted by Inf.
	if got := g.AggregateBandwidth(); math.IsInf(got, 1) || got != 100 {
		t.Errorf("AggregateBandwidth = %g, want 100", got)
	}
}

func TestVMProfile(t *testing.T) {
	// Fig 2(b): hose guarantees derived from the TAG. web: B1, logic:
	// B1+B2, db: B2+B3 in each direction.
	g := threeTier(4, 500, 100, 50)
	cases := []struct {
		tier string
		out  float64
		in   float64
	}{
		{"web", 500, 500},
		{"logic", 600, 600},
		{"db", 150, 150},
	}
	for _, c := range cases {
		out, in := g.VMProfile(g.TierIndex(c.tier))
		if out != c.out || in != c.in {
			t.Errorf("VMProfile(%s) = (%g,%g), want (%g,%g)", c.tier, out, in, c.out, c.in)
		}
	}
}

func TestPerVMDemand(t *testing.T) {
	g := threeTier(4, 500, 100, 50)
	// Mean of (out+in)/2 across 12 VMs: (4*500 + 4*600 + 4*150)/12.
	want := (4*500.0 + 4*600 + 4*150) / 12
	if got := g.PerVMDemand(); math.Abs(got-want) > 1e-9 {
		t.Errorf("PerVMDemand = %g, want %g", got, want)
	}
}

func TestScaleAndClone(t *testing.T) {
	g := threeTier(4, 500, 100, 50)
	c := g.Clone()
	g.Scale(2)
	if g.Edges()[0].S != 1000 {
		t.Errorf("Scale did not double S: %g", g.Edges()[0].S)
	}
	if c.Edges()[0].S != 500 {
		t.Errorf("Clone shares edge storage with original")
	}
	c.AddTier("extra", 1)
	if g.Tiers() != 3 {
		t.Errorf("Clone shares tier storage with original")
	}
}

func TestStringRendering(t *testing.T) {
	g := New("s")
	a := g.AddTier("a", 2)
	b := g.AddExternal("inet", 0)
	g.AddEdge(a, b, 10, 10)
	g.AddSelfLoop(a, 5)
	s := g.String()
	for _, want := range []string{`TAG "s"`, "a[2]", "inet*[0]", "a-<10,10>->inet", "a loop 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := threeTier(4, 500, 100, 50)
	g.AddExternal("inet", 0)
	g.AddEdge(g.TierIndex("web"), g.TierIndex("inet"), 10, 10)

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != g.Name || back.Tiers() != g.Tiers() || len(back.Edges()) != len(g.Edges()) {
		t.Fatalf("round trip changed shape: %s vs %s", back.String(), g.String())
	}
	for i, e := range g.Edges() {
		if back.Edges()[i] != e {
			t.Errorf("edge %d: got %+v want %+v", i, back.Edges()[i], e)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	cases := []string{
		`{"name":"x","tiers":[{"name":"a","n":1}],"edges":[{"from":"a","to":"zzz","s":1,"r":1}]}`,
		`{"name":"x","tiers":[{"name":"a","n":1},{"name":"a","n":2}]}`,
		`{"name":"x","tiers":[{"name":"a","n":0}]}`,
		`not json`,
	}
	for _, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("unmarshal accepted invalid input %q", c)
		}
	}
}

func TestJSONSelfLoopForms(t *testing.T) {
	// Both "sr" and "s" spellings denote the self-loop guarantee.
	for _, c := range []string{
		`{"name":"x","tiers":[{"name":"a","n":3}],"edges":[{"from":"a","to":"a","sr":7}]}`,
		`{"name":"x","tiers":[{"name":"a","n":3}],"edges":[{"from":"a","to":"a","s":7}]}`,
	} {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err != nil {
			t.Fatalf("unmarshal %q: %v", c, err)
		}
		e := g.Edges()[0]
		if !e.SelfLoop() || e.S != 7 || e.R != 7 {
			t.Errorf("self-loop decoded as %+v", e)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := New("dot")
	a := g.AddTier("a", 3)
	b := g.AddTier("b", 2)
	inet := g.AddExternal("inet", 0)
	g.AddEdge(a, b, 10, 15)
	g.AddSelfLoop(b, 5)
	g.AddEdge(a, inet, 1, 1)

	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "dot"`, `3 VMs`, `<10,15>`, `dir=both`, `dashed`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
