package tag

// This file implements the colocation bandwidth-saving analysis of §4.2:
// the conditions under which packing VMs of one or two tiers into the same
// subtree reduces the bandwidth that must be reserved on the subtree
// uplink (Eqs. 2–6 of the paper).

// HoseSavingFeasible reports the necessary and sufficient condition for
// intra-tier (hose) bandwidth saving (Eq. 2): strictly more than half the
// tier's VMs must fit inside one subtree. total is the tier size N^t and
// maxInside the largest number of its VMs that could be placed in the
// subtree (limited by slots and any anti-affinity cap).
func HoseSavingFeasible(total, maxInside int) bool {
	return 2*maxInside > total
}

// TrunkSavingFeasible reports the necessary condition for inter-tier
// (virtual trunk) bandwidth saving (Eq. 6): more than half the VMs of one
// endpoint tier must fit inside the subtree. It is necessary but not
// sufficient; callers verify the actual saving with EdgeSaving (Eq. 4)
// before colocating.
func TrunkSavingFeasible(nFrom, nTo, maxFromInside, maxToInside int) bool {
	return 2*maxFromInside > nFrom || 2*maxToInside > nTo
}

// EdgeSaving returns the reduction in uplink bandwidth (out + in
// directions) obtained by a subtree holding nFromX VMs of e.From and nToX
// VMs of e.To, relative to the worst case in which the opposite tier is
// entirely outside the subtree (the generalized form of Eq. 4).
//
// For the outgoing direction of a trunk t→t' the worst case is
// B2 = min(N_X(t)·S, N(t')·R) and the actual requirement is
// B1 = min(N_X(t)·S, (N(t')−N_X(t'))·R); the saving is B2−B1 ≥ 0. The
// incoming direction is symmetric. A self-loop saves
// (min(nX, N)−min(nX, N−nX))·SR per direction (positive only when
// nX > N/2, which is Eq. 2).
func (g *Graph) EdgeSaving(e Edge, nFromX, nToX int) float64 {
	if e.SelfLoop() {
		return g.SelfLoopSaving(e, nFromX)
	}
	from, to := &g.tiers[e.From], &g.tiers[e.To]

	// Like edgeCut, this is placement's innermost loop (every colocation
	// probe prices an edge), so the unbounded-external cases branch
	// directly instead of routing +Inf through cappedMin: an unbounded
	// opposite tier pins worst and actual to the inside guarantee, so
	// that direction never saves.
	var saving float64

	// Outgoing direction.
	if !(to.External && to.N == 0) {
		snd := float64(nFromX) * e.S
		worstOut := float64(to.N) * e.R
		if snd < worstOut {
			worstOut = snd
		}
		actualOut := float64(to.N-nToX) * e.R
		if snd < actualOut {
			actualOut = snd
		}
		saving = worstOut - actualOut
	}

	// Incoming direction.
	if !(from.External && from.N == 0) {
		rcv := float64(nToX) * e.R
		worstIn := float64(from.N) * e.S
		if rcv < worstIn {
			worstIn = rcv
		}
		actualIn := float64(from.N-nFromX) * e.S
		if rcv < actualIn {
			actualIn = rcv
		}
		saving += worstIn - actualIn
	}
	return saving
}

// SelfLoopSaving returns the per-direction hose bandwidth saved by a
// subtree holding nX of tier t's N VMs, relative to the spread-out worst
// case: max(2·nX − N, 0)·SR (positive exactly under Eq. 2).
func (g *Graph) SelfLoopSaving(e Edge, nX int) float64 {
	if !e.SelfLoop() {
		return 0
	}
	n := g.tiers[e.From].N
	worst := float64(min(nX, n)) * e.S     // all other VMs outside
	actual := float64(min(nX, n-nX)) * e.S // nX colocated inside
	return 2 * (worst - actual)            // both directions
}

// ColocationSaving returns the total uplink bandwidth saved by a subtree
// holding inside[t] VMs of each tier, versus placing the same VMs so that
// no two communicating VMs share the subtree (every edge at its worst
// case). It is the quantity FindTiersToColoc maximizes.
func (g *Graph) ColocationSaving(inside []int) float64 {
	var s float64
	for _, e := range g.edges {
		if e.SelfLoop() {
			s += g.SelfLoopSaving(e, inside[e.From])
		} else {
			s += g.EdgeSaving(e, inside[e.From], inside[e.To])
		}
	}
	return s
}
