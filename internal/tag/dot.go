package tag

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT form: one node per tier
// (labelled with its size), one arrow per trunk (labelled <S,R>), and a
// loop per intra-tier hose. External components render as dashed nodes.
//
//	dot -Tpng tenant.dot -o tenant.png
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  rankdir=LR;\n  node [shape=box, style=rounded];\n")
	for i, t := range g.tiers {
		attrs := fmt.Sprintf("label=\"%s\\n%d VMs\"", t.Name, t.N)
		if t.External {
			label := t.Name
			if t.N > 0 {
				label = fmt.Sprintf("%s\\n%d nodes", t.Name, t.N)
			}
			attrs = fmt.Sprintf("label=\"%s\", style=\"rounded,dashed\"", label)
		}
		fmt.Fprintf(&b, "  t%d [%s];\n", i, attrs)
	}
	for _, e := range g.edges {
		if e.SelfLoop() {
			fmt.Fprintf(&b, "  t%d -> t%d [label=\"%g\", dir=both];\n", e.From, e.To, e.S)
		} else {
			fmt.Fprintf(&b, "  t%d -> t%d [label=\"<%g,%g>\"];\n", e.From, e.To, e.S, e.R)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
