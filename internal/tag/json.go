package tag

import (
	"encoding/json"
	"fmt"
)

// jsonGraph is the wire form of a Graph. Edges reference tiers by name and
// self-loops use the single "sr" guarantee, matching the paper's notation.
type jsonGraph struct {
	Name  string     `json:"name"`
	Tiers []jsonTier `json:"tiers"`
	Edges []jsonEdge `json:"edges"`
}

type jsonTier struct {
	Name     string `json:"name"`
	N        int    `json:"n,omitempty"`
	External bool   `json:"external,omitempty"`
}

type jsonEdge struct {
	From string  `json:"from"`
	To   string  `json:"to"`
	S    float64 `json:"s,omitempty"`
	R    float64 `json:"r,omitempty"`
	SR   float64 `json:"sr,omitempty"`
}

// MarshalJSON encodes the graph in the documented wire form.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name}
	for _, t := range g.tiers {
		jg.Tiers = append(jg.Tiers, jsonTier{Name: t.Name, N: t.N, External: t.External})
	}
	for _, e := range g.edges {
		je := jsonEdge{From: g.tiers[e.From].Name, To: g.tiers[e.To].Name}
		if e.SelfLoop() {
			je.SR = e.S
		} else {
			je.S, je.R = e.S, e.R
		}
		jg.Edges = append(jg.Edges, je)
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes the documented wire form and validates the result.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	ng := Graph{Name: jg.Name}
	idx := make(map[string]int, len(jg.Tiers))
	for _, t := range jg.Tiers {
		if _, dup := idx[t.Name]; dup {
			return fmt.Errorf("tag: duplicate tier %q", t.Name)
		}
		idx[t.Name] = len(ng.tiers)
		ng.tiers = append(ng.tiers, Tier{Name: t.Name, N: t.N, External: t.External})
	}
	for _, e := range jg.Edges {
		u, ok := idx[e.From]
		if !ok {
			return fmt.Errorf("tag: edge references unknown tier %q", e.From)
		}
		v, ok := idx[e.To]
		if !ok {
			return fmt.Errorf("tag: edge references unknown tier %q", e.To)
		}
		if u == v {
			sr := e.SR
			if sr == 0 {
				sr = e.S
			}
			ng.edges = append(ng.edges, Edge{From: u, To: v, S: sr, R: sr})
		} else {
			ng.edges = append(ng.edges, Edge{From: u, To: v, S: e.S, R: e.R})
		}
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = ng
	return nil
}
