package tag

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestFigure2Cut reproduces the L3 analysis of §2.2: when the db tier is
// deployed on its own subtree, the TAG requires only the inter-tier trunk
// bandwidth N·B2 on L3; the intra-tier B3 does not cross the cut.
func TestFigure2Cut(t *testing.T) {
	const n, b1, b2, b3 = 10, 500, 100, 50
	g := threeTier(n, b1, b2, b3)

	inside := []int{0, 0, n} // db subtree
	out, in := g.Cut(inside)
	if !almostEq(out, n*b2) || !almostEq(in, n*b2) {
		t.Errorf("db subtree cut = (%g,%g), want (%g,%g)", out, in, float64(n*b2), float64(n*b2))
	}

	// The generalized hose model would need N*(B2+B3): the TAG saves
	// N*B3 on this link.
	hosePerVM, _ := g.VMProfile(g.TierIndex("db"))
	if hoseCut := float64(n) * hosePerVM; hoseCut-out != n*b3 {
		t.Errorf("hose cut %g - TAG cut %g = %g, want %g", hoseCut, out, hoseCut-out, float64(n*b3))
	}

	// Logic subtree: carries web<->logic (N*B1) and logic<->db (N*B2).
	out, in = g.Cut([]int{0, n, 0})
	if !almostEq(out, n*(b1+b2)) || !almostEq(in, n*(b1+b2)) {
		t.Errorf("logic subtree cut = (%g,%g), want %g", out, in, float64(n*(b1+b2)))
	}
}

// TestFigure5Cut checks the two-tier example of Fig. 5: C1 --<B1,B2>--> C2
// with a self-loop Bin2 on C2.
func TestFigure5Cut(t *testing.T) {
	g := New("fig5")
	c1 := g.AddTier("C1", 6)
	c2 := g.AddTier("C2", 4)
	g.AddEdge(c1, c2, 100, 150)
	g.AddSelfLoop(c2, 80)

	// Subtree holding all of C1 and 1 VM of C2.
	inside := []int{6, 1}
	out, in := g.Cut(inside)
	// Outgoing: C1 trunk senders inside min(6*100, 3*150)=450; self-loop
	// min(1,3)*80=80. Total 530.
	if !almostEq(out, 530) {
		t.Errorf("out = %g, want 530", out)
	}
	// Incoming: trunk senders outside = 0 VMs of C1 -> 0; self-loop 80.
	if !almostEq(in, 80) {
		t.Errorf("in = %g, want 80", in)
	}
}

// TestCutHoseSpecialCase: a TAG with one component and a self-loop is the
// hose model: cut = min(inside, outside)·B per direction.
func TestCutHoseSpecialCase(t *testing.T) {
	g := New("hose")
	a := g.AddTier("a", 9)
	g.AddSelfLoop(a, 120)
	for k := 0; k <= 9; k++ {
		out, in := g.Cut([]int{k})
		want := float64(min(k, 9-k)) * 120
		if !almostEq(out, want) || !almostEq(in, want) {
			t.Errorf("k=%d: cut=(%g,%g), want %g", k, out, in, want)
		}
	}
}

// TestCutPipeSpecialCase: a TAG with one VM per component and no
// self-loops is the pipe model; each crossing edge contributes min(S,R).
func TestCutPipeSpecialCase(t *testing.T) {
	g := New("pipe")
	a := g.AddTier("a", 1)
	b := g.AddTier("b", 1)
	c := g.AddTier("c", 1)
	g.AddEdge(a, b, 30, 20) // pipe of 20
	g.AddEdge(b, c, 15, 40) // pipe of 15
	g.AddEdge(a, c, 10, 10) // pipe of 10

	out, in := g.Cut([]int{1, 0, 0}) // only a inside
	if !almostEq(out, 20+10) || !almostEq(in, 0) {
		t.Errorf("cut a = (%g,%g), want (30,0)", out, in)
	}
	out, in = g.Cut([]int{1, 1, 0}) // a,b inside
	if !almostEq(out, 15+10) || !almostEq(in, 0) {
		t.Errorf("cut ab = (%g,%g), want (25,0)", out, in)
	}
	out, in = g.Cut([]int{0, 0, 1}) // only c inside
	if !almostEq(in, 25) || !almostEq(out, 0) {
		t.Errorf("cut c = (%g,%g), want (0,25)", out, in)
	}
}

func TestCutExternalUnbounded(t *testing.T) {
	g := New("ext")
	u := g.AddTier("u", 4)
	inet := g.AddExternal("inet", 0)
	g.AddEdge(u, inet, 25, 25)
	g.AddEdge(inet, u, 30, 30)

	out, in := g.Cut([]int{2, 0})
	if !almostEq(out, 2*25) || !almostEq(in, 2*30) {
		t.Errorf("cut = (%g,%g), want (50,60)", out, in)
	}

	// ExternalDemand with every VM inside.
	out, in = g.ExternalDemand()
	if !almostEq(out, 100) || !almostEq(in, 120) {
		t.Errorf("ExternalDemand = (%g,%g), want (100,120)", out, in)
	}
}

// TestCutExternalZeroFarSide: a zero guarantee on an unbounded external
// endpoint must not zero the tenant-side reservation — the external side
// is simply unconstrained.
func TestCutExternalZeroFarSide(t *testing.T) {
	g := New("ext0")
	u := g.AddTier("u", 8)
	inet := g.AddExternal("inet", 0)
	g.AddEdge(u, inet, 50, 0) // only the send side is specified
	g.AddEdge(inet, u, 0, 25) // only the receive side is specified
	out, in := g.Cut([]int{8, 0})
	if !almostEq(out, 400) || !almostEq(in, 200) {
		t.Errorf("cut = (%g,%g), want (400,200)", out, in)
	}
}

func TestCutExternalBounded(t *testing.T) {
	g := New("extb")
	u := g.AddTier("u", 4)
	store := g.AddExternal("storage", 2) // bounded external: 2 nodes
	g.AddEdge(u, store, 100, 60)
	out, _ := g.Cut([]int{4, 0})
	// min(4*100, 2*60) = 120.
	if !almostEq(out, 120) {
		t.Errorf("bounded external cut out = %g, want 120", out)
	}
}

func TestCutEmptyAndFull(t *testing.T) {
	g := threeTier(7, 11, 13, 17)
	out, in := g.Cut([]int{0, 0, 0})
	if out != 0 || in != 0 {
		t.Errorf("empty cut = (%g,%g), want zero", out, in)
	}
	out, in = g.Cut([]int{7, 7, 7})
	if out != 0 || in != 0 {
		t.Errorf("full cut = (%g,%g), want zero (no external tiers)", out, in)
	}
}

// randomGraph builds a random TAG with no external tiers for property
// tests.
func randomGraph(r *rand.Rand) *Graph {
	g := New("rand")
	tiers := 1 + r.Intn(5)
	for i := 0; i < tiers; i++ {
		g.AddTier(string(rune('a'+i)), 1+r.Intn(12))
	}
	edges := r.Intn(8)
	for i := 0; i < edges; i++ {
		u, v := r.Intn(tiers), r.Intn(tiers)
		if u == v {
			g.AddSelfLoop(u, float64(r.Intn(500)))
		} else {
			g.AddEdge(u, v, float64(r.Intn(500)), float64(r.Intn(500)))
		}
	}
	return g
}

func randomInside(r *rand.Rand, g *Graph) []int {
	inside := make([]int, g.Tiers())
	for i := range inside {
		inside[i] = r.Intn(g.TierSize(i) + 1)
	}
	return inside
}

// TestCutSymmetryProperty: without external tiers, traffic leaving a
// subtree is exactly the traffic entering its complement:
// CutOut(X) == CutIn(X̄) and vice versa.
func TestCutSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		inside := randomInside(r, g)
		comp := make([]int, len(inside))
		for i := range inside {
			comp[i] = g.TierSize(i) - inside[i]
		}
		out, in := g.Cut(inside)
		cout, cin := g.Cut(comp)
		return almostEq(out, cin) && almostEq(in, cout)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCutNonNegativeBounded: cuts are non-negative and bounded by the sum
// of the per-VM profiles of the VMs inside (a TAG never asks for more than
// its generalized-hose equivalent).
func TestCutNonNegativeBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		inside := randomInside(r, g)
		out, in := g.Cut(inside)
		if out < 0 || in < 0 {
			return false
		}
		var hoseOut, hoseIn float64
		for t := 0; t < g.Tiers(); t++ {
			o, i := g.VMProfile(t)
			hoseOut += float64(inside[t]) * o
			hoseIn += float64(inside[t]) * i
		}
		return out <= hoseOut+1e-9 && in <= hoseIn+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCutColocationMonotone: moving one more VM of a tier into a subtree
// that already holds every other VM of the graph can only shrink the cut.
func TestCutColocationMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		full := g.Sizes()
		tier := r.Intn(g.Tiers())
		if g.TierSize(tier) < 2 {
			return true
		}
		fewer := append([]int(nil), full...)
		fewer[tier]--
		fo, fi := g.Cut(fewer)
		ao, ai := g.Cut(full)
		return ao <= fo+1e-9 && ai <= fi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
