package tag

import "fmt"

// WithTierSize returns a copy of the graph with tier t's VM count set
// to n — the auto-scaling transform of §3/§6: per-VM guarantees are
// untouched, only the tier size changes. It errors on an out-of-range
// tier, a non-positive size, or an external tier (external components
// are never placed, so they cannot be auto-scaled).
func (g *Graph) WithTierSize(t, n int) (*Graph, error) {
	if t < 0 || t >= len(g.tiers) {
		return nil, fmt.Errorf("tag: tier %d out of range [0,%d)", t, len(g.tiers))
	}
	if g.tiers[t].External {
		return nil, fmt.Errorf("tag: cannot resize external tier %q", g.tiers[t].Name)
	}
	if n <= 0 {
		return nil, fmt.Errorf("tag: tier %q resize to non-positive size %d", g.tiers[t].Name, n)
	}
	c := g.Clone()
	c.tiers[t].N = n
	return c, nil
}
