// Package tag implements the Tenant Application Graph (TAG) network
// abstraction from "Application-Driven Bandwidth Guarantees in Datacenters"
// (Lee et al., SIGCOMM 2014), §3.
//
// A TAG is a directed graph whose vertices are application components
// (tiers) and whose edges carry per-VM bandwidth guarantees. A directed
// edge u→v labeled <S,R> guarantees every VM in tier u bandwidth S for
// sending to tier v, and every VM in tier v bandwidth R for receiving from
// tier u (a "virtual trunk"). A self-loop edge u→u labeled SR is a
// conventional hose between the VMs of tier u.
//
// The hose and pipe models are special cases of a TAG: a TAG with a single
// component and a self-loop is the hose model, and a TAG with exactly one
// VM per component and no self-loops is the pipe model.
package tag

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Tier is one application component: a set of VMs performing the same
// function (e.g., "web", "logic", "db").
type Tier struct {
	// Name identifies the tier within its graph. Must be unique.
	Name string
	// N is the number of VMs in the tier. Must be positive unless the
	// tier is External.
	N int
	// External marks a special component that models nodes outside the
	// tenant (the Internet, a storage service, another tenant). External
	// tiers are never placed; traffic to and from them crosses every
	// subtree cut. Size is optional for external tiers (N == 0 means
	// "unbounded").
	External bool
}

// Edge is a directed inter-tier bandwidth guarantee (a virtual trunk), or
// an intra-tier hose when From == To.
type Edge struct {
	// From and To are tier indices within the graph.
	From, To int
	// S is the per-VM sending guarantee of tier From toward tier To, in
	// Mbps. For a self-loop, S == R == SR, the single hose guarantee.
	S float64
	// R is the per-VM receiving guarantee of tier To from tier From, in
	// Mbps.
	R float64
}

// SelfLoop reports whether e is an intra-tier hose edge.
func (e Edge) SelfLoop() bool { return e.From == e.To }

// Graph is a Tenant Application Graph: the bandwidth requirements of one
// tenant application.
//
// The zero value is an empty graph ready for use; add tiers with AddTier
// and edges with AddEdge / AddSelfLoop.
type Graph struct {
	// Name identifies the tenant.
	Name string

	tiers []Tier
	edges []Edge
}

// New returns an empty TAG with the given tenant name.
func New(name string) *Graph { return &Graph{Name: name} }

// AddTier appends a tier with n VMs and returns its index.
func (g *Graph) AddTier(name string, n int) int {
	g.tiers = append(g.tiers, Tier{Name: name, N: n})
	return len(g.tiers) - 1
}

// AddExternal appends an external (special) component and returns its
// index. n may be zero for an unbounded external component.
func (g *Graph) AddExternal(name string, n int) int {
	g.tiers = append(g.tiers, Tier{Name: name, N: n, External: true})
	return len(g.tiers) - 1
}

// AddEdge adds a directed inter-tier guarantee from tier u to tier v:
// every VM in u may send at s Mbps to v, and every VM in v may receive at
// r Mbps from u. Adding an edge with u == v is equivalent to AddSelfLoop
// with SR = s and requires s == r.
func (g *Graph) AddEdge(u, v int, s, r float64) {
	if u == v && s != r {
		panic(fmt.Sprintf("tag: self-loop on tier %d requires S == R (got %g, %g)", u, s, r))
	}
	g.edges = append(g.edges, Edge{From: u, To: v, S: s, R: r})
}

// AddSelfLoop adds an intra-tier hose on tier u with per-VM guarantee sr
// Mbps in each direction.
func (g *Graph) AddSelfLoop(u int, sr float64) {
	g.edges = append(g.edges, Edge{From: u, To: u, S: sr, R: sr})
}

// AddBidirectional adds a pair of opposite edges between u and v with the
// same guarantees in each direction (the undirected-edge shorthand of §3).
func (g *Graph) AddBidirectional(u, v int, s, r float64) {
	g.AddEdge(u, v, s, r)
	g.AddEdge(v, u, r, s)
}

// Tiers returns the number of tiers (including external components).
func (g *Graph) Tiers() int { return len(g.tiers) }

// Tier returns the i'th tier.
func (g *Graph) Tier(i int) Tier { return g.tiers[i] }

// TierSize returns the number of VMs in tier i.
func (g *Graph) TierSize(i int) int { return g.tiers[i].N }

// TierIndex returns the index of the tier with the given name, or -1.
func (g *Graph) TierIndex(name string) int {
	for i, t := range g.tiers {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Edges returns the graph's edges. The slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// VMs returns the total number of placeable VMs (external tiers excluded).
func (g *Graph) VMs() int {
	n := 0
	for _, t := range g.tiers {
		if !t.External {
			n += t.N
		}
	}
	return n
}

// Sizes returns a fresh slice with the VM count of every tier; external
// tiers report zero placeable VMs.
func (g *Graph) Sizes() []int {
	s := make([]int, len(g.tiers))
	for i, t := range g.tiers {
		if !t.External {
			s[i] = t.N
		}
	}
	return s
}

// EdgeAggregate returns the total bandwidth the TAG guarantees for traffic
// on edge e: B(u→v) = min(S·Nu, R·Nv) for a trunk, and SR·N/2 for a
// self-loop (each unit of intra-tier traffic consumes one send and one
// receive guarantee). Unbounded external endpoints contribute +Inf to the
// min.
func (g *Graph) EdgeAggregate(e Edge) float64 {
	if e.SelfLoop() {
		return e.S * float64(g.tiers[e.From].N) / 2
	}
	snd := g.capOrInf(e.From, e.S)
	rcv := g.capOrInf(e.To, e.R)
	return math.Min(snd, rcv)
}

func (g *Graph) capOrInf(t int, perVM float64) float64 {
	tier := g.tiers[t]
	if tier.External && tier.N == 0 {
		return math.Inf(1)
	}
	return perVM * float64(tier.N)
}

// AggregateBandwidth returns the sum of EdgeAggregate over all edges: the
// tenant's total guaranteed bandwidth demand. Used as the bandwidth weight
// when reporting rejection rates.
func (g *Graph) AggregateBandwidth() float64 {
	var sum float64
	for _, e := range g.edges {
		a := g.EdgeAggregate(e)
		if !math.IsInf(a, 1) {
			sum += a
		}
	}
	return sum
}

// PerVMDemand returns the mean per-VM bandwidth demand of the tenant:
// the average over placeable VMs of (send + receive guarantees)/2. This is
// the Bvm quantity the evaluation scales to Bmax.
func (g *Graph) PerVMDemand() float64 {
	n := g.VMs()
	if n == 0 {
		return 0
	}
	var total float64
	for t := range g.tiers {
		if g.tiers[t].External {
			continue
		}
		out, in := g.VMProfile(t)
		total += (out + in) / 2 * float64(g.tiers[t].N)
	}
	return total / float64(n)
}

// VMProfile returns the total per-VM send and receive guarantees of one VM
// in tier t, summed over all incident edges (self-loops contribute to
// both). This is the generalized-hose guarantee a VM of t would need.
func (g *Graph) VMProfile(t int) (out, in float64) {
	for _, e := range g.edges {
		if e.From == t {
			out += e.S
		}
		if e.To == t {
			in += e.R
		}
	}
	return out, in
}

// Validate checks structural invariants: at least one tier, positive
// sizes for non-external tiers, edge endpoints in range, non-negative
// guarantees, unique tier names.
func (g *Graph) Validate() error {
	if len(g.tiers) == 0 {
		return errors.New("tag: graph has no tiers")
	}
	names := make(map[string]bool, len(g.tiers))
	for i, t := range g.tiers {
		if t.Name == "" {
			return fmt.Errorf("tag: tier %d has empty name", i)
		}
		if names[t.Name] {
			return fmt.Errorf("tag: duplicate tier name %q", t.Name)
		}
		names[t.Name] = true
		if !t.External && t.N <= 0 {
			return fmt.Errorf("tag: tier %q has non-positive size %d", t.Name, t.N)
		}
		if t.N < 0 {
			return fmt.Errorf("tag: tier %q has negative size %d", t.Name, t.N)
		}
	}
	for i, e := range g.edges {
		if e.From < 0 || e.From >= len(g.tiers) || e.To < 0 || e.To >= len(g.tiers) {
			return fmt.Errorf("tag: edge %d endpoints (%d,%d) out of range", i, e.From, e.To)
		}
		if e.S < 0 || e.R < 0 {
			return fmt.Errorf("tag: edge %d has negative guarantee", i)
		}
		if e.SelfLoop() && e.S != e.R {
			return fmt.Errorf("tag: self-loop edge %d has S != R", i)
		}
		if e.SelfLoop() && g.tiers[e.From].External {
			return fmt.Errorf("tag: self-loop on external tier %q", g.tiers[e.From].Name)
		}
	}
	return nil
}

// Scale multiplies every bandwidth guarantee by f. Used to normalize a
// relative-unit workload so its largest per-VM demand equals Bmax.
func (g *Graph) Scale(f float64) {
	for i := range g.edges {
		g.edges[i].S *= f
		g.edges[i].R *= f
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name}
	c.tiers = append([]Tier(nil), g.tiers...)
	c.edges = append([]Edge(nil), g.edges...)
	return c
}

// String returns a compact human-readable rendering, e.g.
// "web[10] -<100,50>-> logic[20]".
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TAG %q:", g.Name)
	for _, t := range g.tiers {
		ext := ""
		if t.External {
			ext = "*"
		}
		fmt.Fprintf(&b, " %s%s[%d]", t.Name, ext, t.N)
	}
	for _, e := range g.edges {
		if e.SelfLoop() {
			fmt.Fprintf(&b, " {%s loop %g}", g.tiers[e.From].Name, e.S)
		} else {
			fmt.Fprintf(&b, " {%s-<%g,%g>->%s}", g.tiers[e.From].Name, e.S, e.R, g.tiers[e.To].Name)
		}
	}
	return b.String()
}
