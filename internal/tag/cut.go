package tag

import "math"

// Cut returns the bandwidth that must be allocated on the uplink of a
// subtree that contains inside[t] VMs of every tier t (Eq. 1 of the
// paper). out is C(X,out), the bandwidth for traffic leaving the subtree;
// in is C(X,in), the bandwidth for traffic entering it.
//
// For every trunk edge t→t' the outgoing requirement is
//
//	min(N_X(t)·S, N_X̄(t')·R)
//
// and the incoming requirement is min(N_X̄(t)·S, N_X(t')·R), where N_X is
// the count inside the subtree and N_X̄ = N − N_X the count outside. A
// self-loop on tier t contributes min(N_X(t), N_X̄(t))·SR in each
// direction. External tiers are always entirely outside the subtree; an
// unbounded external tier (N == 0) never limits the min.
//
// inside must have length g.Tiers(); counts for external tiers must be 0.
func (g *Graph) Cut(inside []int) (out, in float64) {
	for _, e := range g.edges {
		o, i := g.edgeCut(e, inside)
		out += o
		in += i
	}
	return out, in
}

// edgeCut returns the contribution of a single edge to the subtree cut.
func (g *Graph) edgeCut(e Edge, inside []int) (out, in float64) {
	if e.SelfLoop() {
		n := g.tiers[e.From].N
		nx := inside[e.From]
		h := float64(min(nx, n-nx)) * e.S
		return h, h
	}
	from, to := g.tiers[e.From], g.tiers[e.To]
	fromIn, toIn := inside[e.From], inside[e.To]

	// Outgoing: senders inside, receivers outside.
	sndCap := float64(fromIn) * e.S
	rcvCap := outsideCap(to, toIn, e.R)
	out = cappedMin(sndCap, rcvCap)

	// Incoming: senders outside, receivers inside.
	sndCap = outsideCap(from, fromIn, e.S)
	rcvCap = float64(toIn) * e.R
	in = cappedMin(sndCap, rcvCap)
	return out, in
}

// outsideCap returns the aggregate guarantee of the part of tier t outside
// the subtree. An unbounded external tier never limits the requirement
// (+Inf), even when the spec leaves its per-VM value at zero — the
// binding guarantee is the tenant side's.
func outsideCap(t Tier, insideCount int, perVM float64) float64 {
	if t.External && t.N == 0 {
		return math.Inf(1)
	}
	return float64(t.N-insideCount) * perVM
}

// cappedMin is min(a, b) treating +Inf as "unbounded"; if both sides are
// unbounded the requirement is unbounded too, which callers must have
// excluded via Validate (an edge between two unbounded external tiers is
// never placeable and contributes nothing meaningful).
func cappedMin(a, b float64) float64 {
	m := math.Min(a, b)
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// CutOut returns only the outgoing component of Cut.
func (g *Graph) CutOut(inside []int) float64 {
	out, _ := g.Cut(inside)
	return out
}

// CutIn returns only the incoming component of Cut.
func (g *Graph) CutIn(inside []int) float64 {
	_, in := g.Cut(inside)
	return in
}

// ExternalDemand returns the cut bandwidth of the whole tenant: the
// guarantees toward external components that must be available on every
// link from the tenant's lowest common subtree up to the topology root.
func (g *Graph) ExternalDemand() (out, in float64) {
	return g.Cut(g.Sizes())
}
