package tag

import "math"

// Cut returns the bandwidth that must be allocated on the uplink of a
// subtree that contains inside[t] VMs of every tier t (Eq. 1 of the
// paper). out is C(X,out), the bandwidth for traffic leaving the subtree;
// in is C(X,in), the bandwidth for traffic entering it.
//
// For every trunk edge t→t' the outgoing requirement is
//
//	min(N_X(t)·S, N_X̄(t')·R)
//
// and the incoming requirement is min(N_X̄(t)·S, N_X(t')·R), where N_X is
// the count inside the subtree and N_X̄ = N − N_X the count outside. A
// self-loop on tier t contributes min(N_X(t), N_X̄(t))·SR in each
// direction. External tiers are always entirely outside the subtree; an
// unbounded external tier (N == 0) never limits the min.
//
// inside must have length g.Tiers(); counts for external tiers must be 0.
func (g *Graph) Cut(inside []int) (out, in float64) {
	for _, e := range g.edges {
		o, i := g.edgeCut(e, inside)
		out += o
		in += i
	}
	return out, in
}

// edgeCut returns the contribution of a single edge to the subtree cut.
// This is the innermost loop of every placement decision, so it reads
// tier fields through pointers (no Tier copies) and branches on the
// unbounded-external cases directly instead of routing +Inf through
// cappedMin: an inside guarantee (count·rate) is always finite, so when
// the outside tier is unbounded the inside side alone is the min.
func (g *Graph) edgeCut(e Edge, inside []int) (out, in float64) {
	from := &g.tiers[e.From]
	if e.SelfLoop() {
		nx := inside[e.From]
		h := float64(min(nx, from.N-nx)) * e.S
		return h, h
	}
	to := &g.tiers[e.To]
	fromIn, toIn := inside[e.From], inside[e.To]

	// Outgoing: senders inside, receivers outside.
	out = float64(fromIn) * e.S
	if !(to.External && to.N == 0) {
		if rcv := float64(to.N-toIn) * e.R; rcv < out {
			out = rcv
		}
	}

	// Incoming: senders outside, receivers inside.
	in = float64(toIn) * e.R
	if !(from.External && from.N == 0) {
		if snd := float64(from.N-fromIn) * e.S; snd < in {
			in = snd
		}
	}
	return out, in
}

// outsideCap returns the aggregate guarantee of the part of tier t outside
// the subtree. An unbounded external tier never limits the requirement
// (+Inf), even when the spec leaves its per-VM value at zero — the
// binding guarantee is the tenant side's.
func outsideCap(t Tier, insideCount int, perVM float64) float64 {
	if t.External && t.N == 0 {
		return math.Inf(1)
	}
	return float64(t.N-insideCount) * perVM
}

// cappedMin is min(a, b) treating +Inf as "unbounded"; if both sides are
// unbounded the requirement is unbounded too, which callers must have
// excluded via Validate (an edge between two unbounded external tiers is
// never placeable and contributes nothing meaningful).
func cappedMin(a, b float64) float64 {
	// Branchy min instead of math.Min: inputs are never NaN (products of
	// counts and validated rates), and this inlines where the assembly
	// intrinsic does not. +Inf is the only value above MaxFloat64.
	m := a
	if b < m {
		m = b
	}
	if m > math.MaxFloat64 {
		return 0
	}
	return m
}

// SplitCut partitions the cut at inside by whether an edge touches tier
// t: it returns the summed contribution of the non-touching edges (which
// is invariant under changes to inside[t]) and appends the touching
// edges to buf. Callers probing many values of one tier's inside count
// pay for only the touching edges per probe (see EdgesCut).
func (g *Graph) SplitCut(inside []int, t int, buf []Edge) (fixOut, fixIn float64, touching []Edge) {
	touching = buf
	for _, e := range g.edges {
		if e.From == t || e.To == t {
			touching = append(touching, e)
			continue
		}
		o, i := g.edgeCut(e, inside)
		fixOut += o
		fixIn += i
	}
	return fixOut, fixIn, touching
}

// TouchingEdges appends the edges incident to tier t to buf and returns
// it: the edge subset whose cut contribution varies with inside[t].
// Callers comparing marginal cuts at several values of one tier's count
// need only these (the rest cancels out of any difference).
func (g *Graph) TouchingEdges(t int, buf []Edge) []Edge {
	for _, e := range g.edges {
		if e.From == t || e.To == t {
			buf = append(buf, e)
		}
	}
	return buf
}

// EdgesCut sums the cut contribution of the given edges at inside —
// the probe half of a SplitCut.
func (g *Graph) EdgesCut(edges []Edge, inside []int) (out, in float64) {
	for _, e := range edges {
		o, i := g.edgeCut(e, inside)
		out += o
		in += i
	}
	return out, in
}

// CutOut returns only the outgoing component of Cut.
func (g *Graph) CutOut(inside []int) float64 {
	out, _ := g.Cut(inside)
	return out
}

// CutIn returns only the incoming component of Cut.
func (g *Graph) CutIn(inside []int) float64 {
	_, in := g.Cut(inside)
	return in
}

// ExternalDemand returns the cut bandwidth of the whole tenant: the
// guarantees toward external components that must be available on every
// link from the tenant's lowest common subtree up to the topology root.
func (g *Graph) ExternalDemand() (out, in float64) {
	return g.Cut(g.Sizes())
}
