package sim

import (
	"testing"

	"cloudmirror/internal/place"
	"cloudmirror/internal/place/cloudmirror"
	"cloudmirror/internal/place/oktopus"
	"cloudmirror/internal/tag"
	"cloudmirror/internal/topology"
	"cloudmirror/internal/voc"
	"cloudmirror/internal/workload"
)

func smallPool(bmax float64) []*tag.Graph {
	pool := workload.ClonePool(workload.HPCloudLike(11))
	workload.ScaleToBmax(pool, bmax)
	return pool
}

func cmFactory(t *topology.Tree) place.Placer { return cloudmirror.New(t) }

func TestRunBasic(t *testing.T) {
	cfg := Config{
		Spec:      topology.SmallSpec(),
		NewPlacer: cmFactory,
		Pool:      smallPool(400),
		Arrivals:  400,
		Load:      0.5,
		MeanDwell: 1,
		Seed:      1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != 400 || res.Accepted+res.Rejected != res.Arrivals {
		t.Errorf("arrival accounting wrong: %+v", res)
	}
	if res.Placer != "CM" {
		t.Errorf("placer name = %q", res.Placer)
	}
	for _, rate := range []float64{res.VMRejectionRate(), res.BWRejectionRate(), res.TenantRejectionRate()} {
		if rate < 0 || rate > 1 {
			t.Errorf("rate out of range: %g", rate)
		}
	}
	// At 50% load on this pool, CloudMirror should accept the vast
	// majority of requests.
	if res.BWRejectionRate() > 0.25 {
		t.Errorf("BW rejection rate = %g, unexpectedly high", res.BWRejectionRate())
	}
	if res.PlacementTime <= 0 {
		t.Error("placement time not recorded")
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := Config{
		Spec:      topology.SmallSpec(),
		NewPlacer: cmFactory,
		Pool:      smallPool(600),
		Arrivals:  200,
		Load:      0.8,
		MeanDwell: 1,
		Seed:      99,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accepted != b.Accepted || a.RejectedBW != b.RejectedBW {
		t.Errorf("identical seeds diverged: %d/%g vs %d/%g", a.Accepted, a.RejectedBW, b.Accepted, b.RejectedBW)
	}
}

// TestArrivalsOnlyMirrors is the Table 1 measurement at test scale:
// CM places TAGs on an unlimited-capacity tree; a mirror re-prices every
// placement under the VOC model. The VOC must reserve at least as much
// at every level (footnote 7), with the gap widening up the tree.
func TestArrivalsOnlyMirrors(t *testing.T) {
	spec := topology.SmallSpec()
	for i := range spec.Levels {
		spec.Levels[i].Uplink = 1e15
	}
	cfg := Config{
		Spec:         spec,
		NewPlacer:    cmFactory,
		Pool:         smallPool(500),
		Arrivals:     2000,
		Load:         1,
		MeanDwell:    1,
		Seed:         5,
		ArrivalsOnly: true,
		Mirrors: []Mirror{
			{Name: "VOC", ModelFor: func(g *tag.Graph) place.Model { return voc.FromTAG(g) }},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected > 1 {
		t.Errorf("arrivals-only run should stop at first rejection, saw %d", res.Rejected)
	}
	vocLv := res.MirrorReserved["VOC"]
	if vocLv == nil {
		t.Fatal("mirror results missing")
	}
	for l := 0; l < len(res.LevelReserved)-1; l++ {
		if res.LevelReserved[l] > vocLv[l]+1e-6 {
			t.Errorf("level %d: TAG reserved %g > VOC %g (violates footnote 7)",
				l, res.LevelReserved[l], vocLv[l])
		}
	}
	// The filled datacenter must have meaningful reservations.
	if res.LevelReserved[0] == 0 {
		t.Error("no server-level reservations recorded")
	}
}

// TestCMBeatsOVOC: under constrained bandwidth, CloudMirror rejects no
// more bandwidth than Oktopus+VOC on the same arrival sequence — the
// headline Fig. 7/8 comparison at test scale.
func TestCMBeatsOVOC(t *testing.T) {
	// The bing-like pool has large multi-tier tenants that must split
	// across racks, stressing the oversubscribed links.
	pool := workload.ClonePool(workload.BingLike(2))
	workload.ScaleToBmax(pool, 1200)
	base := Config{
		Spec:      topology.SmallSpec(),
		Pool:      pool,
		Arrivals:  1500,
		Load:      0.9,
		MeanDwell: 1,
		Seed:      17,
	}
	cmCfg := base
	cmCfg.NewPlacer = cmFactory
	cm, err := Run(cmCfg)
	if err != nil {
		t.Fatal(err)
	}
	ovocCfg := base
	ovocCfg.NewPlacer = func(tr *topology.Tree) place.Placer { return oktopus.New(tr) }
	ovocCfg.ModelFor = func(g *tag.Graph) place.Model { return voc.FromTAG(g) }
	ovoc, err := Run(ovocCfg)
	if err != nil {
		t.Fatal(err)
	}
	if cm.BWRejectionRate() >= ovoc.BWRejectionRate()-0.02 {
		t.Errorf("CM rejects %.3f of bandwidth vs OVOC %.3f; expected a clear CM advantage",
			cm.BWRejectionRate(), ovoc.BWRejectionRate())
	}
	t.Logf("BW rejection: CM=%.3f OVOC=%.3f", cm.BWRejectionRate(), ovoc.BWRejectionRate())
}

// TestWCSReporting: a guaranteed-HA run achieves at least the required
// WCS on every deployed component.
func TestWCSReporting(t *testing.T) {
	cfg := Config{
		Spec:      topology.SmallSpec(),
		NewPlacer: cmFactory,
		Pool:      smallPool(300),
		Arrivals:  150,
		Load:      0.4,
		MeanDwell: 1,
		Seed:      3,
		HA:        place.HASpec{RWCS: 0.5},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted == 0 {
		t.Fatal("nothing accepted")
	}
	// Eq. 7 with singleton tiers yields WCS 0 for N=1 components; the
	// guarantee applies to tiers with N ≥ 2, so check the min over
	// multi-VM components via the mean being well above zero and the
	// guarantee shape via MinWCS of 0 or ≥ 0.5.
	if res.MinWCS > 0 && res.MinWCS < 0.5-1e-9 {
		t.Errorf("MinWCS = %g violates the 0.5 guarantee", res.MinWCS)
	}
	if res.MeanWCS <= 0.3 {
		t.Errorf("MeanWCS = %g, expected substantial availability", res.MeanWCS)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Spec: topology.SmallSpec(), NewPlacer: cmFactory, Arrivals: 1}); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := Run(Config{Spec: topology.SmallSpec(), NewPlacer: cmFactory, Pool: smallPool(1)}); err == nil {
		t.Error("zero arrivals accepted")
	}
}
