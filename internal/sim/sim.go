// Package sim is the event-driven tenant simulation engine behind the
// CloudMirror evaluation (§5): Poisson tenant arrivals sampled uniformly
// from a workload pool, exponential dwell times, a placement algorithm
// under test, and rejection/availability accounting.
//
// The load on the datacenter follows the paper's formula
//
//	load = Ts · λ · Td / totalSlots
//
// so for a requested load the engine derives the arrival rate λ from the
// pool's mean tenant size Ts and the mean dwell time Td.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"cloudmirror/internal/ha"
	"cloudmirror/internal/place"
	"cloudmirror/internal/tag"
	"cloudmirror/internal/topology"
)

// Config describes one simulation run.
type Config struct {
	// Spec is the datacenter topology to build.
	Spec topology.Spec
	// NewPlacer constructs the algorithm under test on the built tree.
	NewPlacer func(*topology.Tree) place.Placer
	// AlgorithmName is the registered name of the algorithm, required
	// only by DurableThroughput (durable ledgers persist the placer by
	// name, so snapshot recovery can rebuild it).
	AlgorithmName string
	// ModelFor selects the bandwidth abstraction used for admission and
	// reservation (TAG, VOC, pipe). Nil means the TAG itself.
	ModelFor func(*tag.Graph) place.Model
	// Pool is the tenant template pool; arrivals sample it uniformly.
	Pool []*tag.Graph
	// Arrivals is the number of tenant arrivals to simulate.
	Arrivals int
	// Load is the target datacenter load in (0,1].
	Load float64
	// MeanDwell is the mean tenant dwell time Td (arbitrary time units).
	MeanDwell float64
	// HA is applied to every arriving tenant (zero value: none).
	HA place.HASpec
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// ArrivalsOnly disables departures and stops at the first rejection
	// caused by slot exhaustion — the Table 1 measurement mode.
	ArrivalsOnly bool
	// Mirrors re-prices each successful placement under alternative
	// bandwidth models on unlimited shadow trees (Table 1's CM+VOC row).
	Mirrors []Mirror
	// HALevel is the fault-domain level for WCS reporting (default
	// server).
	HALevel int
}

// Mirror re-prices placements under another model.
type Mirror struct {
	Name     string
	ModelFor func(*tag.Graph) place.Model
}

// Result aggregates a run's outcome.
type Result struct {
	Placer string

	Arrivals int
	Accepted int
	Rejected int

	TotalVMs    int
	RejectedVMs int
	TotalBW     float64
	RejectedBW  float64

	// LevelReserved[l] is the bandwidth reserved on level-l uplinks at
	// the measurement point (end of run, or first slot rejection in
	// ArrivalsOnly mode), in Mbps summed over both directions.
	LevelReserved []float64
	// MirrorReserved gives the same vector per configured mirror model.
	MirrorReserved map[string][]float64

	// WCS statistics over the components of all accepted tenants, at
	// the configured HALevel.
	MeanWCS, MinWCS, MaxWCS float64
	wcsCount                int

	// PlacementTime is the cumulative wall time spent inside Place.
	PlacementTime time.Duration
}

// VMRejectionRate returns rejected VMs / total VMs across all arrivals.
func (r *Result) VMRejectionRate() float64 {
	if r.TotalVMs == 0 {
		return 0
	}
	return float64(r.RejectedVMs) / float64(r.TotalVMs)
}

// BWRejectionRate returns rejected bandwidth / total bandwidth demanded.
func (r *Result) BWRejectionRate() float64 {
	if r.TotalBW == 0 {
		return 0
	}
	return r.RejectedBW / r.TotalBW
}

// TenantRejectionRate returns rejected tenants / arrivals.
func (r *Result) TenantRejectionRate() float64 {
	if r.Arrivals == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(r.Arrivals)
}

// departure is a scheduled tenant exit.
type departure struct {
	at  float64
	res *place.Reservation
}

type departureQueue []departure

func (q departureQueue) Len() int           { return len(q) }
func (q departureQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q departureQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *departureQueue) Push(x any)        { *q = append(*q, x.(departure)) }
func (q *departureQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Run executes the simulation and returns its result.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Pool) == 0 {
		return nil, errors.New("sim: empty tenant pool")
	}
	if cfg.Arrivals <= 0 {
		return nil, errors.New("sim: Arrivals must be positive")
	}
	tree := topology.New(cfg.Spec)
	placer := cfg.NewPlacer(tree)
	r := rand.New(rand.NewSource(cfg.Seed))

	res := &Result{
		Placer:         placer.Name(),
		LevelReserved:  make([]float64, tree.Height()+1),
		MirrorReserved: make(map[string][]float64),
		MinWCS:         1,
	}

	// Mirror trees: unlimited capacity so re-pricing never fails.
	type mirrorState struct {
		m    Mirror
		tree *topology.Tree
	}
	mirrors := make([]mirrorState, 0, len(cfg.Mirrors))
	for _, m := range cfg.Mirrors {
		spec := cfg.Spec
		spec.Levels = append([]topology.LevelSpec(nil), cfg.Spec.Levels...)
		for i := range spec.Levels {
			spec.Levels[i].Uplink = 1e15
		}
		mirrors = append(mirrors, mirrorState{m, topology.New(spec)})
	}

	// Arrival rate from the load formula.
	meanDwell := cfg.MeanDwell
	if meanDwell <= 0 {
		meanDwell = 1
	}
	var meanSize float64
	for _, g := range cfg.Pool {
		meanSize += float64(g.VMs())
	}
	meanSize /= float64(len(cfg.Pool))
	totalSlots := float64(tree.SlotsTotal(tree.Root()))
	load := cfg.Load
	if load <= 0 {
		load = 1
	}
	lambda := load * totalSlots / (meanSize * meanDwell)

	var clock float64
	var departures departureQueue
	heap.Init(&departures)

	for i := 0; i < cfg.Arrivals; i++ {
		clock += r.ExpFloat64() / lambda
		if !cfg.ArrivalsOnly {
			for len(departures) > 0 && departures[0].at <= clock {
				heap.Pop(&departures).(departure).res.Release()
			}
		}

		g := cfg.Pool[r.Intn(len(cfg.Pool))]
		var model place.Model = g
		if cfg.ModelFor != nil {
			model = cfg.ModelFor(g)
		}
		req := &place.Request{ID: int64(i), Graph: g, Model: model, HA: cfg.HA}

		res.Arrivals++
		res.TotalVMs += g.VMs()
		bw := g.AggregateBandwidth()
		res.TotalBW += bw

		start := time.Now() //cloudlint:wallclock measures real placement latency for reporting; simulated outcomes never read it
		reservation, err := placer.Place(req)
		res.PlacementTime += time.Since(start) //cloudlint:wallclock measures real placement latency for reporting; simulated outcomes never read it
		if err != nil {
			if !errors.Is(err, place.ErrRejected) {
				return nil, fmt.Errorf("sim: placement error: %w", err)
			}
			res.Rejected++
			res.RejectedVMs += g.VMs()
			res.RejectedBW += bw
			if cfg.ArrivalsOnly {
				// Table 1 mode: measure at the first (slot) rejection.
				break
			}
			continue
		}
		res.Accepted++
		res.recordWCS(tree, reservation, g, cfg.HALevel)
		for _, ms := range mirrors {
			mm := ms.m.ModelFor(g)
			if _, err := place.Account(ms.tree, mm, reservation.Placement()); err != nil {
				return nil, fmt.Errorf("sim: mirror %q accounting failed: %w", ms.m.Name, err)
			}
		}
		if !cfg.ArrivalsOnly {
			heap.Push(&departures, departure{clock + r.ExpFloat64()*meanDwell, reservation})
		}
	}

	for l := 0; l <= tree.Height(); l++ {
		res.LevelReserved[l] = tree.LevelReserved(l)
	}
	for _, ms := range mirrors {
		lv := make([]float64, ms.tree.Height()+1)
		for l := range lv {
			lv[l] = ms.tree.LevelReserved(l)
		}
		res.MirrorReserved[ms.m.Name] = lv
	}
	if res.wcsCount == 0 {
		res.MinWCS = 0
	}
	return res, nil
}

func (res *Result) recordWCS(tree *topology.Tree, r *place.Reservation, g *tag.Graph, laa int) {
	w := ha.WCS(tree, r.Placement(), g.Tiers(), laa)
	for _, v := range w {
		if v < 0 {
			continue
		}
		res.MeanWCS = (res.MeanWCS*float64(res.wcsCount) + v) / float64(res.wcsCount+1)
		res.wcsCount++
		if v < res.MinWCS {
			res.MinWCS = v
		}
		if v > res.MaxWCS {
			res.MaxWCS = v
		}
	}
}
