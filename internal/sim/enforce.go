package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"cloudmirror/guarantee"
	"cloudmirror/internal/dataplane"
	"cloudmirror/internal/enforce"
	"cloudmirror/internal/tag"
	"cloudmirror/internal/topology"
)

// enforceMaxPairs bounds the active flows one tenant contributes to a
// control period, so enforcement cost stays linear in tenants rather
// than quadratic in their VM counts. Pairs beyond the cap are
// stride-sampled deterministically.
const enforceMaxPairs = 32

// ChurnEnforcement is the enforcement slice of a churn run: the
// outcome of the interleaved GP/RA control periods.
type ChurnEnforcement struct {
	// Periods counts the control periods run; Iterations the total
	// convergence iterations they took.
	Periods, Iterations int
	// MinRatio is the worst pair's achieved / min(demand, guarantee)
	// over all periods — the end-to-end guarantee invariant: >= 1 (up
	// to rounding) means no admitted tenant's guarantee was ever
	// broken, even under churn and resizes.
	MinRatio float64
	// Tenants and Pairs describe the final control period.
	Tenants, Pairs int
	// GuaranteedMbps, AchievedMbps, and SpareMbps are the final
	// period's fleet totals: partitioned guarantees, achieved rates,
	// and the work-conserving surplus on top of demand-bounded
	// guarantees.
	GuaranteedMbps, AchievedMbps, SpareMbps float64
	// Events are the dataplane's lifecycle counters at the end of the
	// run (after the drain): the incremental-update audit trail.
	Events dataplane.Counters
}

// demandPair is one drawable flow of a demand plan: a tenant-local VM
// pair and its static hose bound.
type demandPair struct {
	s, d  int
	bound float64
}

// demandPlan caches the deterministic half of a tenant's demand draws
// — the deployment's candidate VM pairs (deduplicated, stride-capped
// at enforceMaxPairs) with their hose bounds, a pure function of the
// tenant's graph. Plans are built once per (tenant, graph) and
// invalidated by resizes, so a control period only draws the random
// load factors.
type demandPlan struct {
	pairs []demandPair
}

// newDemandPlan enumerates the graph's TAG-permitted pairs.
func newDemandPlan(g *tag.Graph) *demandPlan {
	dep := enforce.NewDeployment(g)
	type pair struct{ s, d int }
	var candidates []pair
	seen := make(map[pair]bool)
	for _, e := range g.Edges() {
		for _, s := range dep.TierVMs(e.From) {
			for _, d := range dep.TierVMs(e.To) {
				if s == d || seen[pair{s, d}] {
					continue
				}
				seen[pair{s, d}] = true
				candidates = append(candidates, pair{s, d})
			}
		}
	}
	if len(candidates) > enforceMaxPairs {
		sampled := make([]pair, enforceMaxPairs)
		for i := range sampled {
			sampled[i] = candidates[i*len(candidates)/enforceMaxPairs]
		}
		candidates = sampled
	}
	p := &demandPlan{}
	for _, c := range candidates {
		snd, rcv, ok := dep.PairGuarantee(c.s, c.d)
		bound := math.Min(snd, rcv)
		if !ok || bound <= 0 {
			continue
		}
		p.pairs = append(p.pairs, demandPair{s: c.s, d: c.d, bound: bound})
	}
	return p
}

// draw produces the plan's flows for one control period: each pair's
// offered load is a random multiple of its hose bound — some flows
// under their guarantee, some bursting past it, so both GP
// partitioning and work-conserving redistribution are exercised. All
// randomness comes from r.
func (p *demandPlan) draw(r *rand.Rand) []guarantee.Demand {
	factors := []float64{0.25, 0.5, 1, 2}
	demands := make([]guarantee.Demand, len(p.pairs))
	for i, pr := range p.pairs {
		demands[i] = guarantee.Demand{
			Src:  pr.s,
			Dst:  pr.d,
			Mbps: factors[r.Intn(len(factors))] * pr.bound,
		}
	}
	return demands
}

// controlPeriod declares fresh demands for every live tenant and runs
// the GP/RA loop to convergence, folding the outcome into agg.
func controlPeriod(r *rand.Rand, enf *guarantee.Enforcement, live []*churnTenant, agg *ChurnEnforcement) error {
	for _, ten := range live {
		if ten.plan == nil {
			ten.plan = newDemandPlan(ten.graph)
		}
		if err := enf.SetDemand(ten.grant, ten.plan.draw(r)); err != nil {
			return fmt.Errorf("sim: declaring demands: %w", err)
		}
	}
	rep, err := enf.Converge(0, 0)
	if err != nil {
		return fmt.Errorf("sim: enforcement control period: %w", err)
	}
	agg.Periods++
	agg.Iterations += rep.Iterations
	if rep.MinRatio < agg.MinRatio {
		agg.MinRatio = rep.MinRatio
	}
	agg.Tenants = rep.Tenants
	agg.Pairs = rep.Pairs
	agg.GuaranteedMbps = rep.GuaranteedMbps
	agg.AchievedMbps = rep.AchievedMbps
	agg.SpareMbps = rep.SpareMbps
	return nil
}

// EnforceBenchCell is one (tenant count, dirty fraction) measurement
// of the enforcement control loop's performance.
type EnforceBenchCell struct {
	// Tenants is the number of tenants under enforcement; Pairs the
	// enforced flows per control period.
	Tenants, Pairs int
	// DirtyFraction is the fraction of tenants that redeclared their
	// demands before each measured step — the knob the incremental
	// stepper's win depends on (1.0 dirties the whole fleet every
	// period).
	DirtyFraction float64
	// Steps is how many control periods the measurement ran;
	// StepsPerSec the sustained rate; MsPerStep its inverse in
	// milliseconds.
	Steps       int
	StepsPerSec float64
	MsPerStep   float64
	// ConvergeIterations and ConvergeMs measure a cold convergence
	// after a fleet-wide demand change.
	ConvergeIterations int
	ConvergeMs         float64
}

// EnforceBenchConfig parameterizes EnforceBench.
type EnforceBenchConfig struct {
	// Spec is the datacenter topology.
	Spec topology.Spec
	// Pool is the tenant template pool.
	Pool []*tag.Graph
	// TenantCounts lists the fleet sizes to measure.
	TenantCounts []int
	// DirtyFractions lists the per-step redeclare fractions to sweep
	// for each fleet size; empty means just 1.0 (every tenant
	// redeclares every period).
	DirtyFractions []float64
	// Seed drives tenant sampling and demand draws.
	Seed int64
}

// EnforceBench measures Controller.Step throughput and convergence
// latency versus tenant count: for each count it admits that many
// tenants through an enforcement-enabled service, declares bounded
// demand matrices, and times the control loop. Wall-clock numbers —
// a performance artifact, not a results artifact.
func EnforceBench(cfg EnforceBenchConfig) ([]EnforceBenchCell, error) {
	if len(cfg.Pool) == 0 {
		return nil, errors.New("sim: empty tenant pool")
	}
	var cells []EnforceBenchCell
	for _, count := range cfg.TenantCounts {
		svc, err := guarantee.New(cfg.Spec,
			guarantee.WithAlgorithm("cm"),
			guarantee.WithEnforcement(guarantee.EnforcementConfig{}),
		)
		if err != nil {
			return nil, err
		}
		r := rand.New(rand.NewSource(cfg.Seed))
		enf := svc.Enforcement()
		grants := make([]guarantee.Grant, 0, count)
		plans := make([]*demandPlan, 0, count)
		for attempts := 0; len(grants) < count; attempts++ {
			if attempts > 10*count {
				return nil, fmt.Errorf("sim: could not admit %d tenants (stuck at %d): datacenter too small", count, len(grants))
			}
			g := cfg.Pool[r.Intn(len(cfg.Pool))]
			grant, err := svc.Admit(context.Background(), guarantee.Request{ID: int64(attempts), Graph: g})
			if err != nil {
				continue
			}
			grants = append(grants, grant)
			plans = append(plans, newDemandPlan(g))
		}
		declare := func() error {
			for i, grant := range grants {
				if err := enf.SetDemand(grant, plans[i].draw(r)); err != nil {
					return err
				}
			}
			return nil
		}
		if err := declare(); err != nil {
			return nil, err
		}

		// Warm up (installs limits and settles components).
		rep, err := enf.Step()
		if err != nil {
			return nil, err
		}

		fracs := cfg.DirtyFractions
		if len(fracs) == 0 {
			fracs = []float64{1}
		}
		for _, frac := range fracs {
			dirty := int(math.Ceil(frac * float64(count)))
			if dirty < 1 {
				dirty = 1
			}
			if dirty > count {
				dirty = count
			}

			// Measure the sustained control loop: each period, a
			// rotating window of `dirty` tenants redeclares fresh
			// demands, then the fleet steps.
			cell := EnforceBenchCell{Tenants: count, Pairs: rep.Pairs, DirtyFraction: frac}
			rot := 0
			start := time.Now() //cloudlint:wallclock benchmark timing measurement only; never feeds simulated state
			//cloudlint:wallclock wall-time budget bounds benchmark duration, not simulation behavior
			for cell.Steps < 10 || (time.Since(start) < 100*time.Millisecond && cell.Steps < 10_000) {
				for k := 0; k < dirty; k++ {
					i := (rot + k) % count
					if err := enf.SetDemand(grants[i], plans[i].draw(r)); err != nil {
						return nil, err
					}
				}
				rot = (rot + dirty) % count
				if _, err := enf.Step(); err != nil {
					return nil, err
				}
				cell.Steps++
			}
			elapsed := time.Since(start).Seconds() //cloudlint:wallclock benchmark timing measurement only; never feeds simulated state
			if elapsed > 0 {
				cell.StepsPerSec = float64(cell.Steps) / elapsed
				cell.MsPerStep = 1000 * elapsed / float64(cell.Steps)
			}

			// Cold convergence after a fleet-wide demand change.
			if err := declare(); err != nil {
				return nil, err
			}
			cstart := time.Now() //cloudlint:wallclock benchmark timing measurement only; never feeds simulated state
			crep, err := enf.Converge(0, 0)
			if err != nil {
				return nil, err
			}
			cell.ConvergeIterations = crep.Iterations
			cell.ConvergeMs = 1000 * time.Since(cstart).Seconds() //cloudlint:wallclock benchmark timing measurement only; never feeds simulated state
			cells = append(cells, cell)
		}

		for _, grant := range grants {
			grant.Release()
		}
	}
	return cells, nil
}
