package sim

import (
	"testing"

	"cloudmirror/internal/place"
	"cloudmirror/internal/place/cloudmirror"
	"cloudmirror/internal/topology"
	"cloudmirror/internal/workload"
)

func throughputConfig(arrivals int) Config {
	pool := workload.BingLike(1)
	workload.ScaleToBmax(pool, 800)
	return Config{
		Spec:      topology.SmallSpec(),
		NewPlacer: func(t *topology.Tree) place.Placer { return cloudmirror.New(t) },
		Pool:      pool,
		Arrivals:  arrivals,
		Seed:      1,
	}
}

// TestThroughputConcurrent drives the concurrent admission path on one
// shared tree with several workers; under -race this doubles as a
// data-race test of the full placer stack behind the Admitter.
func TestThroughputConcurrent(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res, err := Throughput(throughputConfig(200), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Workers != workers {
			t.Errorf("workers = %d, want %d", res.Workers, workers)
		}
		if res.Attempts != 200 {
			t.Errorf("workers=%d: attempts = %d, want 200", workers, res.Attempts)
		}
		if res.Admitted+res.Rejected != res.Attempts {
			t.Errorf("workers=%d: admitted %d + rejected %d != attempts %d",
				workers, res.Admitted, res.Rejected, res.Attempts)
		}
		if res.Admitted == 0 {
			t.Errorf("workers=%d: nothing admitted", workers)
		}
		if res.AttemptsPerSec <= 0 {
			t.Errorf("workers=%d: non-positive throughput %g", workers, res.AttemptsPerSec)
		}
	}
}

// TestShardedThroughput drives the dispatcher-based admission path over
// several shards and policies; under -race this doubles as a data-race
// test of the cluster layer.
func TestShardedThroughput(t *testing.T) {
	for _, policy := range []string{"rr", "least", "p2c"} {
		res, err := ShardedThroughput(throughputConfig(200), 4, policy, 4)
		if err != nil {
			t.Fatalf("policy=%s: %v", policy, err)
		}
		if res.Shards != 4 {
			t.Errorf("policy=%s: shards = %d, want 4", policy, res.Shards)
		}
		if res.Policy != policy {
			t.Errorf("policy = %q, want %q", res.Policy, policy)
		}
		if res.Attempts != 200 {
			t.Errorf("policy=%s: attempts = %d, want 200", policy, res.Attempts)
		}
		if res.Admitted+res.Rejected != res.Attempts {
			t.Errorf("policy=%s: admitted %d + rejected %d != attempts %d",
				policy, res.Admitted, res.Rejected, res.Attempts)
		}
		if res.Admitted == 0 {
			t.Errorf("policy=%s: nothing admitted", policy)
		}
	}
}

// TestOptimisticThroughput drives the optimistic two-phase admission
// pipeline with concurrent clients and multiple planners per shard;
// under -race this doubles as a data-race test of the plan/validate/
// commit machinery beneath the dispatcher.
func TestOptimisticThroughput(t *testing.T) {
	for _, planners := range []int{1, 4} {
		res, err := OptimisticThroughput(throughputConfig(200), 2, "least", planners, 4)
		if err != nil {
			t.Fatalf("planners=%d: %v", planners, err)
		}
		if res.Planners != planners {
			t.Errorf("planners = %d, want %d", res.Planners, planners)
		}
		if res.Attempts != 200 {
			t.Errorf("planners=%d: attempts = %d, want 200", planners, res.Attempts)
		}
		if res.Admitted+res.Rejected != res.Attempts {
			t.Errorf("planners=%d: admitted %d + rejected %d != attempts %d",
				planners, res.Admitted, res.Rejected, res.Attempts)
		}
		if res.Admitted == 0 {
			t.Errorf("planners=%d: nothing admitted", planners)
		}
	}
	// planners < 1 is raised to 1 rather than silently running locked.
	res, err := OptimisticThroughput(throughputConfig(50), 1, "", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Planners != 1 {
		t.Errorf("planners = %d, want 1 after clamping", res.Planners)
	}
}

// TestThroughputIsShardsOne: the single-tree entry point is the
// shards=1 special case of the shared plumbing.
func TestThroughputIsShardsOne(t *testing.T) {
	res, err := Throughput(throughputConfig(100), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 1 {
		t.Errorf("shards = %d, want 1", res.Shards)
	}
	if res.Policy != "rr" {
		t.Errorf("policy = %q, want rr", res.Policy)
	}
	if res.Failovers != 0 {
		t.Errorf("failovers = %d, want 0 on a single shard", res.Failovers)
	}
}

func TestThroughputValidation(t *testing.T) {
	cfg := throughputConfig(100)
	cfg.Pool = nil
	if _, err := Throughput(cfg, 2); err == nil {
		t.Error("empty pool accepted")
	}
	cfg = throughputConfig(0)
	if _, err := Throughput(cfg, 2); err == nil {
		t.Error("zero arrivals accepted")
	}
}
