package sim

import (
	"testing"

	"cloudmirror/internal/place"
	"cloudmirror/internal/place/cloudmirror"
	"cloudmirror/internal/topology"
	"cloudmirror/internal/workload"
)

func throughputConfig(arrivals int) Config {
	pool := workload.BingLike(1)
	workload.ScaleToBmax(pool, 800)
	return Config{
		Spec:      topology.SmallSpec(),
		NewPlacer: func(t *topology.Tree) place.Placer { return cloudmirror.New(t) },
		Pool:      pool,
		Arrivals:  arrivals,
		Seed:      1,
	}
}

// TestThroughputConcurrent drives the concurrent admission path on one
// shared tree with several workers; under -race this doubles as a
// data-race test of the full placer stack behind the Admitter.
func TestThroughputConcurrent(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res, err := Throughput(throughputConfig(200), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Workers != workers {
			t.Errorf("workers = %d, want %d", res.Workers, workers)
		}
		if res.Attempts != 200 {
			t.Errorf("workers=%d: attempts = %d, want 200", workers, res.Attempts)
		}
		if res.Admitted+res.Rejected != res.Attempts {
			t.Errorf("workers=%d: admitted %d + rejected %d != attempts %d",
				workers, res.Admitted, res.Rejected, res.Attempts)
		}
		if res.Admitted == 0 {
			t.Errorf("workers=%d: nothing admitted", workers)
		}
		if res.AttemptsPerSec <= 0 {
			t.Errorf("workers=%d: non-positive throughput %g", workers, res.AttemptsPerSec)
		}
	}
}

func TestThroughputValidation(t *testing.T) {
	cfg := throughputConfig(100)
	cfg.Pool = nil
	if _, err := Throughput(cfg, 2); err == nil {
		t.Error("empty pool accepted")
	}
	cfg = throughputConfig(0)
	if _, err := Throughput(cfg, 2); err == nil {
		t.Error("zero arrivals accepted")
	}
}
