package sim

import (
	"fmt"
	"strings"
	"testing"

	"cloudmirror/internal/place"
	"cloudmirror/internal/tag"
	"cloudmirror/internal/topology"
	"cloudmirror/internal/voc"
	"cloudmirror/internal/workload"
)

// enforceChurnConfig is the shared scenario: churn plus resizes with
// the enforcement dataplane attached.
func enforceChurnConfig(arrivals int, workers int) ChurnConfig {
	cfg := churnConfig(arrivals, 2, "least")
	cfg.ResizeProb = 0.2
	cfg.Enforce = true
	cfg.EnforceEvery = 16
	cfg.Load = 0.7
	cfg.Workers = workers
	return cfg
}

// renderEnforce flattens the enforcement slice of a churn result for
// output-identity comparison.
func renderEnforce(r *ChurnResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", renderChurn(r))
	e := r.Enforcement
	fmt.Fprintf(&b, "enf periods=%d iters=%d tenants=%d pairs=%d minratio=%.9f g=%.6f a=%.6f s=%.6f ev=%+v\n",
		e.Periods, e.Iterations, e.Tenants, e.Pairs, e.MinRatio,
		e.GuaranteedMbps, e.AchievedMbps, e.SpareMbps, e.Events)
	return b.String()
}

// TestEnforceChurnInvariant is the end-to-end guarantee of the repo:
// under churn and elastic resizes, every admitted tenant's achieved
// bandwidth covers its (demand-bounded) guarantee in every control
// period, spare capacity is redistributed work-conservingly, and the
// dataplane is maintained incrementally — lifecycle counters match the
// control plane's and the fabric is imaged exactly once per shard.
func TestEnforceChurnInvariant(t *testing.T) {
	cfg := enforceChurnConfig(300, 0)
	res, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Enforcement
	if e == nil || e.Periods == 0 {
		t.Fatalf("no control periods ran: %+v", e)
	}
	// The invariant: achieved >= min(demand, guarantee) for every
	// active pair of every tenant in every period (1e-4 relative slack
	// absorbs the ledger's own float epsilon).
	if e.MinRatio < 1-1e-4 {
		t.Errorf("MinRatio = %.9f, want >= 1: an admitted tenant's guarantee was broken", e.MinRatio)
	}
	// Work conservation produced a surplus on top of the guarantees.
	if e.SpareMbps < 0 {
		t.Errorf("SpareMbps = %g, want >= 0", e.SpareMbps)
	}

	// Incremental updates, by event count: every admission, resize,
	// and release the simulator committed reached the dataplane — and
	// nothing was rebuilt (one fabric image per shard, ever).
	ev := e.Events
	if ev.Admitted != int64(res.Admitted) {
		t.Errorf("dataplane admitted %d, control plane %d", ev.Admitted, res.Admitted)
	}
	if ev.Resized != int64(res.Resized) {
		t.Errorf("dataplane resized %d, control plane %d", ev.Resized, res.Resized)
	}
	if ev.Released != ev.Admitted {
		t.Errorf("dataplane released %d of %d admitted after the drain", ev.Released, ev.Admitted)
	}
	if ev.FabricBuilds != int64(res.Shards) {
		t.Errorf("FabricBuilds = %d, want one per shard (%d)", ev.FabricBuilds, res.Shards)
	}
	if ev.Skipped != 0 {
		t.Errorf("%d events skipped in a TAG-priced run", ev.Skipped)
	}
}

// TestEnforceChurnDeterminism: the enforcement-aware churn is
// byte-identical at any worker count — enforcement runs serially
// inside the event loop and draws only from the workload RNG. Run
// with -cpu=1,4,8 (make determinism) so GOMAXPROCS varies too.
func TestEnforceChurnDeterminism(t *testing.T) {
	var ref string
	for _, workers := range []int{1, 4, 8, 0} {
		res, err := Churn(enforceChurnConfig(160, workers))
		if err != nil {
			t.Fatal(err)
		}
		out := renderEnforce(res)
		if ref == "" {
			ref = out
			continue
		}
		if out != ref {
			t.Errorf("workers=%d diverged:\n%s\nwant:\n%s", workers, out, ref)
		}
	}
}

// TestEnforceChurnIncrementalMatchesFull is the end-to-end half of the
// dataplane differential harness: the same churn (admissions, resizes,
// releases, demand redraws, control periods) run with incremental
// stepping and with FullRecompute must render byte-identical
// enforcement transcripts. Runs under make determinism at -cpu=1,4,8.
func TestEnforceChurnIncrementalMatchesFull(t *testing.T) {
	arrivals := 160
	if testing.Short() {
		arrivals = 64
	}
	for _, alpha := range []float64{0, 0.3} {
		inc := enforceChurnConfig(arrivals, 0)
		inc.EnforceAlpha = alpha
		full := inc
		full.EnforceFullRecompute = true
		resInc, err := Churn(inc)
		if err != nil {
			t.Fatal(err)
		}
		resFull, err := Churn(full)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := renderEnforce(resInc), renderEnforce(resFull); a != b {
			t.Errorf("alpha=%g: incremental diverged from full recompute:\n%s\nwant:\n%s", alpha, a, b)
		}
	}
}

// TestEnforceOffDrawsNothing: attaching enforcement must not perturb
// an enforcement-free workload — the arrival/admission sequence of
// Enforce=false matches the pre-enforcement behavior bit for bit.
func TestEnforceOffDrawsNothing(t *testing.T) {
	cfg := churnConfig(200, 2, "rr")
	plain, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Enforce = true
	enforced, err := Churn(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	enforced.Enforcement = nil
	if renderChurn(plain) != renderChurn(enforced) {
		t.Errorf("enforcement perturbed the admission workload:\n%s\nvs\n%s",
			renderChurn(plain), renderChurn(enforced))
	}
}

func TestEnforceChurnValidation(t *testing.T) {
	cfg := churnConfig(10, 1, "rr")
	cfg.Enforce = true
	cfg.ModelFor = func(g *tag.Graph) place.Model { return voc.FromTAG(g) }
	if _, err := Churn(cfg); err == nil {
		t.Error("Enforce with a translated model was accepted")
	}
}

func TestEnforceBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	pool := workload.BingLike(1)
	workload.ScaleToBmax(pool, 800)
	cells, err := EnforceBench(EnforceBenchConfig{
		Spec:         topology.SmallSpec(),
		Pool:         pool,
		TenantCounts: []int{4, 8},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.StepsPerSec <= 0 || c.Pairs == 0 || c.ConvergeIterations == 0 {
			t.Errorf("degenerate cell %+v", c)
		}
	}
}
