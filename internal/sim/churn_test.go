package sim

import (
	"fmt"
	"reflect"
	"testing"

	"cloudmirror/internal/place"
	"cloudmirror/internal/place/cloudmirror"
	"cloudmirror/internal/topology"
	"cloudmirror/internal/workload"
)

func churnConfig(arrivals, shards int, policy string) ChurnConfig {
	pool := workload.BingLike(1)
	workload.ScaleToBmax(pool, 800)
	return ChurnConfig{
		Spec:      topology.SmallSpec(),
		NewPlacer: func(t *topology.Tree) place.Placer { return cloudmirror.New(t) },
		Pool:      pool,
		Shards:    shards,
		Policy:    policy,
		Arrivals:  arrivals,
		Load:      0.9,
		MeanDwell: 1,
		Seed:      1,
	}
}

// renderChurn flattens a result into the comparable string form the CLI
// prints, so determinism is checked on output identity, not timing.
func renderChurn(r *ChurnResult) string {
	s := fmt.Sprintf("%s/%s shards=%d arr=%d adm=%d rej=%d dep=%d fo=%d dur=%.6f rate=%.6f rr=%.6f util=%.6f\n",
		r.Placer, r.Policy, r.Shards, r.Arrivals, r.Admitted, r.Rejected, r.Departures,
		r.Failovers, r.Duration, r.AdmissionRate, r.RejectionRatio, r.Utilization)
	for i, sh := range r.PerShard {
		s += fmt.Sprintf("  %d: %+v\n", i, sh)
	}
	return s
}

// TestChurnDeterminism: equal configs give identical results at any
// Workers value — the event loop is serial, Workers only parallelizes
// shard construction and the final drain. Run with -cpu=1,4,8 so the
// Workers:0 (GOMAXPROCS) case exercises different pool sizes.
func TestChurnDeterminism(t *testing.T) {
	for _, policy := range []string{"rr", "least", "p2c"} {
		t.Run(policy, func(t *testing.T) {
			var ref *ChurnResult
			for _, workers := range []int{1, 4, 8, 0} {
				cfg := churnConfig(400, 4, policy)
				cfg.Workers = workers
				res, err := Churn(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if !reflect.DeepEqual(res, ref) {
					t.Errorf("workers=%d result differs:\n--- want ---\n%s--- got ---\n%s",
						workers, renderChurn(ref), renderChurn(res))
				}
			}
		})
	}
}

// TestChurnSeedSensitivity: different seeds must produce different
// workloads (with overwhelming probability), so no RNG state is
// accidentally shared or fixed.
func TestChurnSeedSensitivity(t *testing.T) {
	a, err := Churn(churnConfig(400, 4, "p2c"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnConfig(400, 4, "p2c")
	cfg.Seed = 2
	b, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if renderChurn(a) == renderChurn(b) {
		t.Error("seeds 1 and 2 produced identical churn results")
	}
}

// TestChurnConservation: counters partition and per-shard slices sum to
// the fleet totals.
func TestChurnConservation(t *testing.T) {
	res, err := Churn(churnConfig(600, 3, "least"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != 600 {
		t.Errorf("arrivals = %d, want 600", res.Arrivals)
	}
	if res.Admitted+res.Rejected != res.Arrivals {
		t.Errorf("admitted %d + rejected %d != arrivals %d", res.Admitted, res.Rejected, res.Arrivals)
	}
	if res.Departures > res.Admitted {
		t.Errorf("departures %d > admitted %d", res.Departures, res.Admitted)
	}
	var shardAdmitted, live int
	for _, s := range res.PerShard {
		shardAdmitted += s.Admitted
		live += s.LiveTenants
		if s.Utilization < 0 || s.Utilization > 1 {
			t.Errorf("shard utilization %g outside [0,1]", s.Utilization)
		}
	}
	if shardAdmitted != res.Admitted {
		t.Errorf("per-shard admitted sums to %d, want %d", shardAdmitted, res.Admitted)
	}
	if live != res.Admitted-res.Departures {
		t.Errorf("live tenants %d != admitted %d - departed %d", live, res.Admitted, res.Departures)
	}
	if res.Duration <= 0 || res.AdmissionRate <= 0 {
		t.Errorf("non-positive duration %g or rate %g", res.Duration, res.AdmissionRate)
	}
}

// TestChurnSingleShardMatchesPolicies: with one shard every policy
// degenerates to the same dispatch, so results must be identical.
func TestChurnSingleShardMatchesPolicies(t *testing.T) {
	var ref *ChurnResult
	for _, policy := range []string{"rr", "least", "p2c"} {
		res, err := Churn(churnConfig(300, 1, policy))
		if err != nil {
			t.Fatal(err)
		}
		res.Policy = "" // the one field allowed to differ
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("policy %q diverges on a single shard:\n--- want ---\n%s--- got ---\n%s",
				policy, renderChurn(ref), renderChurn(res))
		}
	}
}

func TestChurnValidation(t *testing.T) {
	cfg := churnConfig(100, 2, "rr")
	cfg.Pool = nil
	if _, err := Churn(cfg); err == nil {
		t.Error("empty pool accepted")
	}
	cfg = churnConfig(0, 2, "rr")
	if _, err := Churn(cfg); err == nil {
		t.Error("zero arrivals accepted")
	}
	cfg = churnConfig(100, 0, "rr")
	if _, err := Churn(cfg); err == nil {
		t.Error("zero shards accepted")
	}
	cfg = churnConfig(100, 2, "no-such-policy")
	if _, err := Churn(cfg); err == nil {
		t.Error("unknown policy accepted")
	}
}
