package sim

import (
	"fmt"
	"reflect"
	"testing"

	"cloudmirror/internal/pipe"
	"cloudmirror/internal/place"
	"cloudmirror/internal/place/cloudmirror"
	"cloudmirror/internal/place/oktopus"
	"cloudmirror/internal/place/secondnet"
	"cloudmirror/internal/tag"
	"cloudmirror/internal/topology"
	"cloudmirror/internal/voc"
	"cloudmirror/internal/workload"
)

func churnConfig(arrivals, shards int, policy string) ChurnConfig {
	pool := workload.BingLike(1)
	workload.ScaleToBmax(pool, 800)
	return ChurnConfig{
		Spec:      topology.SmallSpec(),
		NewPlacer: func(t *topology.Tree) place.Placer { return cloudmirror.New(t) },
		Pool:      pool,
		Shards:    shards,
		Policy:    policy,
		Arrivals:  arrivals,
		Load:      0.9,
		MeanDwell: 1,
		Seed:      1,
	}
}

// renderChurn flattens a result into the comparable string form the CLI
// prints, so determinism is checked on output identity, not timing.
func renderChurn(r *ChurnResult) string {
	s := fmt.Sprintf("%s/%s shards=%d arr=%d adm=%d rej=%d dep=%d fo=%d dur=%.6f rate=%.6f rr=%.6f util=%.6f\n",
		r.Placer, r.Policy, r.Shards, r.Arrivals, r.Admitted, r.Rejected, r.Departures,
		r.Failovers, r.Duration, r.AdmissionRate, r.RejectionRatio, r.Utilization)
	for i, sh := range r.PerShard {
		s += fmt.Sprintf("  %d: %+v\n", i, sh)
	}
	return s
}

// TestChurnDeterminism: equal configs give identical results at any
// Workers value — the event loop is serial, Workers only parallelizes
// shard construction and the final drain. The optimistic admission
// path (planners > 0) must be just as deterministic: serial dispatch
// rotates the planner pool in a fixed order, so plans, commits, and
// placer state all replay identically. Run with -cpu=1,4,8 so the
// Workers:0 (GOMAXPROCS) case exercises different pool sizes.
func TestChurnDeterminism(t *testing.T) {
	for _, policy := range []string{"rr", "least", "p2c"} {
		for _, planners := range []int{0, 2} {
			t.Run(fmt.Sprintf("%s/planners=%d", policy, planners), func(t *testing.T) {
				var ref *ChurnResult
				for _, workers := range []int{1, 4, 8, 0} {
					cfg := churnConfig(400, 4, policy)
					cfg.Planners = planners
					cfg.Workers = workers
					res, err := Churn(cfg)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					if ref == nil {
						ref = res
						continue
					}
					if !reflect.DeepEqual(res, ref) {
						t.Errorf("workers=%d result differs:\n--- want ---\n%s--- got ---\n%s",
							workers, renderChurn(ref), renderChurn(res))
					}
				}
			})
		}
	}
}

// TestChurnOptimisticMatchesLocked is the correctness proof of the
// concurrency refactor, by output identity: on the seeded churn
// workload, optimistic admission with one planner must produce
// byte-identical results to the locked Admitter — the same
// admit/reject sequence, the same placements (ReservedGbps), and the
// same final utilization. With one planner every plan runs against a
// replica that is byte-identical to the authoritative ledger, and both
// paths advance the ledger exclusively through delta application.
func TestChurnOptimisticMatchesLocked(t *testing.T) {
	for _, shards := range []int{1, 3} {
		locked := churnConfig(800, shards, "least")
		want, err := Churn(locked)
		if err != nil {
			t.Fatal(err)
		}
		opt := churnConfig(800, shards, "least")
		opt.Planners = 1
		got, err := Churn(opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: optimistic(planners=1) diverges from locked:\n--- locked ---\n%s--- optimistic ---\n%s",
				shards, renderChurn(want), renderChurn(got))
		}
		if want.Admitted == 0 || want.Rejected == 0 {
			t.Fatalf("shards=%d: degenerate workload (admitted %d, rejected %d)",
				shards, want.Admitted, want.Rejected)
		}
	}
}

// TestChurnOptimisticMatchesLockedAllPlacers drives every placement
// algorithm (CloudMirror, Oktopus/OVOC, SecondNet) through the
// optimistic pipeline: the unmodified placers plan on replicas, their
// reservations round-trip through the delta layer, and planners=1
// must reproduce the locked path byte-for-byte for each.
func TestChurnOptimisticMatchesLockedAllPlacers(t *testing.T) {
	placers := map[string]struct {
		newPlacer func(*topology.Tree) place.Placer
		modelFor  func(*tag.Graph) place.Model
	}{
		"cm":        {newPlacer: func(tr *topology.Tree) place.Placer { return cloudmirror.New(tr) }},
		"ovoc":      {newPlacer: func(tr *topology.Tree) place.Placer { return oktopus.New(tr) }, modelFor: func(g *tag.Graph) place.Model { return voc.FromTAG(g) }},
		"secondnet": {newPlacer: func(tr *topology.Tree) place.Placer { return secondnet.New(tr) }, modelFor: func(g *tag.Graph) place.Model { return pipe.FromTAG(g) }},
	}
	for name, p := range placers {
		t.Run(name, func(t *testing.T) {
			mk := func(planners int) ChurnConfig {
				cfg := churnConfig(400, 2, "rr")
				cfg.NewPlacer = p.newPlacer
				cfg.ModelFor = p.modelFor
				cfg.Planners = planners
				return cfg
			}
			want, err := Churn(mk(0))
			if err != nil {
				t.Fatal(err)
			}
			got, err := Churn(mk(1))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("optimistic(planners=1) diverges from locked:\n--- locked ---\n%s--- optimistic ---\n%s",
					renderChurn(want), renderChurn(got))
			}
			if want.Admitted == 0 {
				t.Fatal("degenerate workload admitted nothing")
			}
		})
	}
}

// TestChurnOptimisticMultiPlanner: more planners keep the run
// deterministic and conservation-correct, though decisions may
// legitimately differ from the locked path (plans race only in
// configuration, not in execution, under the serial event loop).
func TestChurnOptimisticMultiPlanner(t *testing.T) {
	cfg := churnConfig(600, 2, "rr")
	cfg.Planners = 4
	a, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := churnConfig(600, 2, "rr")
	cfg2.Planners = 4
	b, err := Churn(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("planners=4 churn is not reproducible")
	}
	if a.Admitted+a.Rejected != a.Arrivals {
		t.Errorf("admitted %d + rejected %d != arrivals %d", a.Admitted, a.Rejected, a.Arrivals)
	}
}

// TestChurnSeedSensitivity: different seeds must produce different
// workloads (with overwhelming probability), so no RNG state is
// accidentally shared or fixed.
func TestChurnSeedSensitivity(t *testing.T) {
	a, err := Churn(churnConfig(400, 4, "p2c"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := churnConfig(400, 4, "p2c")
	cfg.Seed = 2
	b, err := Churn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if renderChurn(a) == renderChurn(b) {
		t.Error("seeds 1 and 2 produced identical churn results")
	}
}

// TestChurnConservation: counters partition and per-shard slices sum to
// the fleet totals.
func TestChurnConservation(t *testing.T) {
	res, err := Churn(churnConfig(600, 3, "least"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != 600 {
		t.Errorf("arrivals = %d, want 600", res.Arrivals)
	}
	if res.Admitted+res.Rejected != res.Arrivals {
		t.Errorf("admitted %d + rejected %d != arrivals %d", res.Admitted, res.Rejected, res.Arrivals)
	}
	if res.Departures > res.Admitted {
		t.Errorf("departures %d > admitted %d", res.Departures, res.Admitted)
	}
	var shardAdmitted, live int
	for _, s := range res.PerShard {
		shardAdmitted += s.Admitted
		live += s.LiveTenants
		if s.Utilization < 0 || s.Utilization > 1 {
			t.Errorf("shard utilization %g outside [0,1]", s.Utilization)
		}
	}
	if shardAdmitted != res.Admitted {
		t.Errorf("per-shard admitted sums to %d, want %d", shardAdmitted, res.Admitted)
	}
	if live != res.Admitted-res.Departures {
		t.Errorf("live tenants %d != admitted %d - departed %d", live, res.Admitted, res.Departures)
	}
	if res.Duration <= 0 || res.AdmissionRate <= 0 {
		t.Errorf("non-positive duration %g or rate %g", res.Duration, res.AdmissionRate)
	}
}

// TestChurnSingleShardMatchesPolicies: with one shard every policy
// degenerates to the same dispatch, so results must be identical.
func TestChurnSingleShardMatchesPolicies(t *testing.T) {
	var ref *ChurnResult
	for _, policy := range []string{"rr", "least", "p2c"} {
		res, err := Churn(churnConfig(300, 1, policy))
		if err != nil {
			t.Fatal(err)
		}
		res.Policy = "" // the one field allowed to differ
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("policy %q diverges on a single shard:\n--- want ---\n%s--- got ---\n%s",
				policy, renderChurn(ref), renderChurn(res))
		}
	}
}

func TestChurnValidation(t *testing.T) {
	cfg := churnConfig(100, 2, "rr")
	cfg.Pool = nil
	if _, err := Churn(cfg); err == nil {
		t.Error("empty pool accepted")
	}
	cfg = churnConfig(0, 2, "rr")
	if _, err := Churn(cfg); err == nil {
		t.Error("zero arrivals accepted")
	}
	cfg = churnConfig(100, 0, "rr")
	if _, err := Churn(cfg); err == nil {
		t.Error("zero shards accepted")
	}
	cfg = churnConfig(100, 2, "no-such-policy")
	if _, err := Churn(cfg); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestChurnResizeDeterminism: the churn-with-resize workload is a pure
// function of the config too — equal configs give identical results at
// any Workers value, with elastic scaling events interleaved through
// the guarantee API.
func TestChurnResizeDeterminism(t *testing.T) {
	for _, planners := range []int{0, 2} {
		t.Run(fmt.Sprintf("planners=%d", planners), func(t *testing.T) {
			var ref *ChurnResult
			for _, workers := range []int{1, 4, 0} {
				cfg := churnConfig(400, 2, "least")
				cfg.ResizeProb = 0.4
				cfg.Planners = planners
				cfg.Workers = workers
				res, err := Churn(cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if ref == nil {
					ref = res
					continue
				}
				if !reflect.DeepEqual(res, ref) {
					t.Errorf("workers=%d result differs:\n--- want ---\n%s--- got ---\n%s",
						workers, renderChurn(ref), renderChurn(res))
				}
			}
			if ref.Resized == 0 {
				t.Fatalf("degenerate workload: no resizes committed (rejected %d)", ref.ResizeRejected)
			}
		})
	}
}

// TestChurnResizeOptimisticMatchesLocked extends the byte-identity
// proof to elastic scaling: on the seeded churn+resize workload,
// optimistic admission with one planner must reproduce the locked
// path exactly — the same admit/reject/resize sequence, the same
// placements, the same final ledger-derived statistics. Resizes commit
// through the same net-delta machinery on both paths, which is what
// this pins down.
func TestChurnResizeOptimisticMatchesLocked(t *testing.T) {
	for _, shards := range []int{1, 2} {
		mk := func(planners int) ChurnConfig {
			cfg := churnConfig(600, shards, "least")
			cfg.ResizeProb = 0.4
			cfg.Planners = planners
			return cfg
		}
		want, err := Churn(mk(0))
		if err != nil {
			t.Fatal(err)
		}
		got, err := Churn(mk(1))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: optimistic(planners=1) diverges from locked under resize:\n--- locked ---\n%s--- optimistic ---\n%s",
				shards, renderChurn(want), renderChurn(got))
		}
		if want.Resized == 0 {
			t.Fatalf("shards=%d: degenerate workload: no resizes committed", shards)
		}
	}
}
