package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cloudmirror/internal/parallel"
	"cloudmirror/internal/place"
	"cloudmirror/internal/topology"
)

// ThroughputResult reports a concurrent-admission measurement: many
// workers hammering one shared tree through a place.Admitter.
type ThroughputResult struct {
	Placer  string
	Workers int
	// Attempts is the total number of admission attempts issued.
	Attempts int
	// Admitted and Rejected partition the attempts.
	Admitted, Rejected int
	// Elapsed is the wall time of the measurement phase.
	Elapsed time.Duration
	// AttemptsPerSec is the sustained admission-decision rate.
	AttemptsPerSec float64
}

// holdWindow is how many live tenants each worker keeps before churning
// the oldest, so the tree sits at a realistic steady-state occupancy.
const holdWindow = 8

// Throughput measures sustained admission throughput on a single shared
// tree: `workers` concurrent clients each issue a share of cfg.Arrivals
// admission attempts (tenants sampled from cfg.Pool with a per-worker
// RNG derived deterministically from cfg.Seed), holding up to a small
// window of live tenants and releasing the oldest as they go.
//
// Unlike Run, this is a performance measurement, not a results
// artifact: the admission order — and therefore which tenants are
// accepted — depends on scheduling when workers > 1. Counters are
// exact, placements are always consistent (the Admitter serializes
// ledger mutations), and the tree is fully drained before returning.
func Throughput(cfg Config, workers int) (*ThroughputResult, error) {
	if len(cfg.Pool) == 0 {
		return nil, errors.New("sim: empty tenant pool")
	}
	if cfg.Arrivals <= 0 {
		return nil, errors.New("sim: Arrivals must be positive")
	}
	workers = parallel.Workers(workers)
	if workers > cfg.Arrivals {
		workers = cfg.Arrivals
	}
	tree := topology.New(cfg.Spec)
	adm := place.NewAdmitter(cfg.NewPlacer(tree))

	var (
		wg       sync.WaitGroup
		firstErr atomic.Pointer[error]
		stop     atomic.Bool
	)
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
		stop.Store(true)
	}

	start := time.Now()
	for w := 0; w < workers; w++ {
		ops := cfg.Arrivals / workers
		if w < cfg.Arrivals%workers {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			// SplitMix-style odd multiplier keeps per-worker streams
			// disjoint for any seed.
			r := rand.New(rand.NewSource(cfg.Seed ^ (int64(w)+1)*-0x61C8864680B583EB))
			var live []*place.Admitted
			defer func() {
				for _, ad := range live {
					ad.Release()
				}
			}()
			for i := 0; i < ops && !stop.Load(); i++ {
				g := cfg.Pool[r.Intn(len(cfg.Pool))]
				var model place.Model = g
				if cfg.ModelFor != nil {
					model = cfg.ModelFor(g)
				}
				req := &place.Request{ID: int64(w)<<32 | int64(i), Graph: g, Model: model, HA: cfg.HA}
				ad, err := adm.Place(req)
				if err != nil {
					if !errors.Is(err, place.ErrRejected) {
						fail(fmt.Errorf("sim: concurrent placement error: %w", err))
						return
					}
					// Full: churn the oldest tenant to make room.
					if len(live) > 0 {
						live[0].Release()
						live = live[1:]
					}
					continue
				}
				live = append(live, ad)
				if len(live) > holdWindow {
					live[0].Release()
					live = live[1:]
				}
			}
		}(w, ops)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	stats := adm.Stats()
	res := &ThroughputResult{
		Placer:   adm.Name(),
		Workers:  workers,
		Attempts: int(stats.Admitted + stats.Rejected),
		Admitted: int(stats.Admitted),
		Rejected: int(stats.Rejected),
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		res.AttemptsPerSec = float64(res.Attempts) / elapsed.Seconds()
	}
	return res, nil
}
