package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"cloudmirror/guarantee"
	"cloudmirror/internal/parallel"
	"cloudmirror/internal/place"
)

// ThroughputResult reports a concurrent-admission measurement: many
// workers hammering a shard fleet through the public
// guarantee.Service.
type ThroughputResult struct {
	// Placer and Policy identify the placement algorithm and dispatch
	// policy under test.
	Placer, Policy string
	// Shards is the fleet size; 1 is the single-shared-tree case.
	Shards int
	// Planners is the per-shard optimistic planner count; 0 means the
	// locked admission path.
	Planners int
	// Workers is the number of concurrent admission clients.
	Workers int
	// Attempts is the total number of admission attempts issued.
	Attempts int
	// Admitted and Rejected partition the attempts; Rejected means
	// every shard refused the request.
	Admitted, Rejected int
	// Failovers counts placement attempts beyond each request's first
	// shard.
	Failovers int64
	// Elapsed is the wall time of the measurement phase.
	Elapsed time.Duration
	// AttemptsPerSec is the sustained admission-decision rate.
	AttemptsPerSec float64
}

// holdWindow is how many live tenants each worker keeps before churning
// the oldest, so the trees sit at a realistic steady-state occupancy.
const holdWindow = 8

// Throughput measures sustained admission throughput on a single shared
// tree — the Shards=1 special case of ShardedThroughput, kept as the
// entry point for single-tree studies so both paths share one worker
// loop and cannot drift.
func Throughput(cfg Config, workers int) (*ThroughputResult, error) {
	return ShardedThroughput(cfg, 1, "", workers)
}

// ShardedThroughput measures sustained admission throughput on a fleet
// of shards trees: `workers` concurrent clients each issue a share of
// cfg.Arrivals admission attempts (tenants sampled from cfg.Pool with a
// per-worker RNG derived deterministically from cfg.Seed) through one
// shared guarantee.Service running the named policy ("" means "rr"),
// holding up to a small window of live tenants and releasing the oldest
// as they go.
//
// Unlike Run and Churn, this is a performance measurement, not a
// results artifact: the admission order — and therefore which tenants
// are accepted, and on which shard — depends on scheduling when
// workers > 1. Counters are exact, placements are always consistent
// (each shard's admission path serializes its ledger mutations), and
// the fleet is fully drained before returning.
func ShardedThroughput(cfg Config, shards int, policy string, workers int) (*ThroughputResult, error) {
	return shardedThroughput(cfg, shards, policy, 0, workers)
}

// OptimisticThroughput is the optimistic-admission variant of
// ShardedThroughput: each shard runs the two-phase optimistic pipeline
// with `planners` planner replicas, so concurrent clients plan
// placements in parallel inside a shard and only the short
// validate-and-commit sections serialize. planners values below 1 are
// raised to 1.
func OptimisticThroughput(cfg Config, shards int, policy string, planners, workers int) (*ThroughputResult, error) {
	if planners < 1 {
		planners = 1
	}
	return shardedThroughput(cfg, shards, policy, planners, workers)
}

// shardedThroughput is the shared measurement loop behind both
// throughput entry points; planners == 0 selects the locked admission
// path.
func shardedThroughput(cfg Config, shards int, policy string, planners, workers int) (*ThroughputResult, error) {
	if len(cfg.Pool) == 0 {
		return nil, errors.New("sim: empty tenant pool")
	}
	if cfg.Arrivals <= 0 {
		return nil, errors.New("sim: Arrivals must be positive")
	}
	workers = parallel.Workers(workers)
	if workers > cfg.Arrivals {
		workers = cfg.Arrivals
	}
	svc, err := guarantee.New(cfg.Spec,
		guarantee.WithPlacer(cfg.NewPlacer),
		guarantee.WithModelFor(cfg.ModelFor),
		guarantee.WithShards(shards),
		guarantee.WithPlanners(planners),
		guarantee.WithPolicy(policy),
		guarantee.WithSeed(policySeed(cfg.Seed)),
		guarantee.WithWorkers(workers),
	)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	var (
		wg       sync.WaitGroup
		firstErr atomic.Pointer[error]
		stop     atomic.Bool
	)
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
		stop.Store(true)
	}

	start := time.Now() //cloudlint:wallclock throughput benchmark measures real elapsed time; results are rates, not simulated state
	for w := 0; w < workers; w++ {
		ops := cfg.Arrivals / workers
		if w < cfg.Arrivals%workers {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			// SplitMix-style odd multiplier keeps per-worker streams
			// disjoint for any seed.
			r := rand.New(rand.NewSource(cfg.Seed ^ (int64(w)+1)*-0x61C8864680B583EB))
			var live []guarantee.Grant
			defer func() {
				for _, g := range live {
					g.Release()
				}
			}()
			for i := 0; i < ops && !stop.Load(); i++ {
				g := cfg.Pool[r.Intn(len(cfg.Pool))]
				req := guarantee.Request{ID: int64(w)<<32 | int64(i), Graph: g, HA: cfg.HA}
				grant, err := svc.Admit(ctx, req)
				if err != nil {
					if !errors.Is(err, place.ErrRejected) {
						fail(fmt.Errorf("sim: concurrent placement error: %w", err))
						return
					}
					// Full: churn the oldest tenant to make room.
					if len(live) > 0 {
						live[0].Release()
						live = live[1:]
					}
					continue
				}
				live = append(live, grant)
				if len(live) > holdWindow {
					live[0].Release()
					live = live[1:]
				}
			}
		}(w, ops)
	}
	wg.Wait()
	elapsed := time.Since(start) //cloudlint:wallclock throughput benchmark measures real elapsed time; results are rates, not simulated state

	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	stats := svc.Stats()
	res := &ThroughputResult{
		Placer:    svc.Name(),
		Policy:    svc.Policy(),
		Shards:    svc.Shards(),
		Planners:  planners,
		Workers:   workers,
		Attempts:  int(stats.Admitted + stats.Rejected),
		Admitted:  int(stats.Admitted),
		Rejected:  int(stats.Rejected),
		Failovers: stats.Failovers,
		Elapsed:   elapsed,
	}
	if elapsed > 0 {
		res.AttemptsPerSec = float64(res.Attempts) / elapsed.Seconds()
	}
	return res, nil
}
