package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cloudmirror/guarantee"
	"cloudmirror/internal/parallel"
	"cloudmirror/internal/place"
)

// ThroughputResult reports a concurrent-admission measurement: many
// workers hammering a shard fleet through the public
// guarantee.Service.
type ThroughputResult struct {
	// Placer and Policy identify the placement algorithm and dispatch
	// policy under test.
	Placer, Policy string
	// Shards is the fleet size; 1 is the single-shared-tree case.
	Shards int
	// Planners is the per-shard optimistic planner count; 0 means the
	// locked admission path.
	Planners int
	// Workers is the number of concurrent admission clients.
	Workers int
	// Attempts is the total number of admission attempts issued.
	Attempts int
	// Admitted and Rejected partition the attempts; Rejected means
	// every shard refused the request.
	Admitted, Rejected int
	// Failovers counts placement attempts beyond each request's first
	// shard.
	Failovers int64
	// Elapsed is the wall time of the measurement phase.
	Elapsed time.Duration
	// AttemptsPerSec is the sustained admission-decision rate.
	AttemptsPerSec float64
	// AllocsPerAdmit and BytesPerAdmit are the heap-allocation costs of
	// one admission decision: runtime.MemStats deltas over the
	// measurement phase (workload generation included) divided by
	// attempts.
	AllocsPerAdmit float64
	BytesPerAdmit  float64
	// Fsyncs counts write-ahead-log fsyncs issued during the run
	// (durable mode only). Group commit keeps it below the operation
	// count under concurrency.
	Fsyncs uint64
}

// holdWindow is how many live tenants each worker keeps before churning
// the oldest, so the trees sit at a realistic steady-state occupancy.
const holdWindow = 8

// Throughput measures sustained admission throughput on a single shared
// tree — the Shards=1 special case of ShardedThroughput, kept as the
// entry point for single-tree studies so both paths share one worker
// loop and cannot drift.
func Throughput(cfg Config, workers int) (*ThroughputResult, error) {
	return ShardedThroughput(cfg, 1, "", workers)
}

// ShardedThroughput measures sustained admission throughput on a fleet
// of shards trees: `workers` concurrent clients each issue a share of
// cfg.Arrivals admission attempts (tenants sampled from cfg.Pool with a
// per-worker RNG derived deterministically from cfg.Seed) through one
// shared guarantee.Service running the named policy ("" means "rr"),
// holding up to a small window of live tenants and releasing the oldest
// as they go.
//
// Unlike Run and Churn, this is a performance measurement, not a
// results artifact: the admission order — and therefore which tenants
// are accepted, and on which shard — depends on scheduling when
// workers > 1. Counters are exact, placements are always consistent
// (each shard's admission path serializes its ledger mutations), and
// the fleet is fully drained before returning.
func ShardedThroughput(cfg Config, shards int, policy string, workers int) (*ThroughputResult, error) {
	return shardedThroughput(cfg, shards, policy, 0, workers, "")
}

// OptimisticThroughput is the optimistic-admission variant of
// ShardedThroughput: each shard runs the two-phase optimistic pipeline
// with `planners` planner replicas, so concurrent clients plan
// placements in parallel inside a shard and only the short
// validate-and-commit sections serialize. planners values below 1 are
// raised to 1.
func OptimisticThroughput(cfg Config, shards int, policy string, planners, workers int) (*ThroughputResult, error) {
	if planners < 1 {
		planners = 1
	}
	return shardedThroughput(cfg, shards, policy, planners, workers, "")
}

// DurableThroughput is the durable-mode variant of ShardedThroughput:
// the service writes a write-ahead log under dir (which must be empty),
// so every admission decision is fsynced before it is acknowledged.
// Concurrent clients exercise the WAL group commit — the result's
// Fsyncs field reports how many fsyncs the run actually paid.
func DurableThroughput(cfg Config, shards int, policy string, workers int, dir string) (*ThroughputResult, error) {
	return shardedThroughput(cfg, shards, policy, 0, workers, dir)
}

// shardedThroughput is the shared measurement loop behind the
// throughput entry points; planners == 0 selects the locked admission
// path, and a non-empty walDir makes the service durable.
func shardedThroughput(cfg Config, shards int, policy string, planners, workers int, walDir string) (*ThroughputResult, error) {
	if len(cfg.Pool) == 0 {
		return nil, errors.New("sim: empty tenant pool")
	}
	if cfg.Arrivals <= 0 {
		return nil, errors.New("sim: Arrivals must be positive")
	}
	workers = parallel.Workers(workers)
	if workers > cfg.Arrivals {
		workers = cfg.Arrivals
	}
	opts := []guarantee.Option{
		guarantee.WithModelFor(cfg.ModelFor),
		guarantee.WithShards(shards),
		guarantee.WithPlanners(planners),
		guarantee.WithPolicy(policy),
		guarantee.WithSeed(policySeed(cfg.Seed)),
		guarantee.WithWorkers(workers),
	}
	if walDir != "" {
		// Durable ledgers persist their placer by registered name, not
		// constructor; resolve cfg.NewPlacer's registered equivalent.
		opts = append(opts, guarantee.WithAlgorithm(cfg.AlgorithmName), guarantee.WithDurability(walDir))
	} else {
		opts = append(opts, guarantee.WithPlacer(cfg.NewPlacer))
	}
	svc, err := guarantee.New(cfg.Spec, opts...)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	var (
		wg       sync.WaitGroup
		firstErr atomic.Pointer[error]
		stop     atomic.Bool
	)
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
		stop.Store(true)
	}

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now() //cloudlint:wallclock throughput benchmark measures real elapsed time; results are rates, not simulated state
	for w := 0; w < workers; w++ {
		ops := cfg.Arrivals / workers
		if w < cfg.Arrivals%workers {
			ops++
		}
		if ops == 0 {
			continue
		}
		wg.Add(1)
		go func(w, ops int) {
			defer wg.Done()
			// SplitMix-style odd multiplier keeps per-worker streams
			// disjoint for any seed.
			r := rand.New(rand.NewSource(cfg.Seed ^ (int64(w)+1)*-0x61C8864680B583EB))
			var live []guarantee.Grant
			defer func() {
				for _, g := range live {
					g.Release()
				}
			}()
			for i := 0; i < ops && !stop.Load(); i++ {
				g := cfg.Pool[r.Intn(len(cfg.Pool))]
				req := guarantee.Request{ID: int64(w)<<32 | int64(i), Graph: g, HA: cfg.HA}
				grant, err := svc.Admit(ctx, req)
				if err != nil {
					if !errors.Is(err, place.ErrRejected) {
						fail(fmt.Errorf("sim: concurrent placement error: %w", err))
						return
					}
					// Full: churn the oldest tenant to make room.
					if len(live) > 0 {
						live[0].Release()
						live = live[1:]
					}
					continue
				}
				live = append(live, grant)
				if len(live) > holdWindow {
					live[0].Release()
					live = live[1:]
				}
			}
		}(w, ops)
	}
	wg.Wait()
	elapsed := time.Since(start) //cloudlint:wallclock throughput benchmark measures real elapsed time; results are rates, not simulated state
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}
	stats := svc.Stats()
	res := &ThroughputResult{
		Placer:    svc.Name(),
		Policy:    svc.Policy(),
		Shards:    svc.Shards(),
		Planners:  planners,
		Workers:   workers,
		Attempts:  int(stats.Admitted + stats.Rejected),
		Admitted:  int(stats.Admitted),
		Rejected:  int(stats.Rejected),
		Failovers: stats.Failovers,
		Elapsed:   elapsed,
	}
	if elapsed > 0 {
		res.AttemptsPerSec = float64(res.Attempts) / elapsed.Seconds()
	}
	if res.Attempts > 0 {
		res.AllocsPerAdmit = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(res.Attempts)
		res.BytesPerAdmit = float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / float64(res.Attempts)
	}
	if dur := svc.Durability(); dur != nil {
		res.Fsyncs = dur.Stats().Fsyncs
		if err := svc.Close(ctx); err != nil {
			return nil, err
		}
	}
	return res, nil
}
