package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"

	"cloudmirror/guarantee"
	"cloudmirror/internal/parallel"
	"cloudmirror/internal/place"
	"cloudmirror/internal/tag"
	"cloudmirror/internal/topology"
)

// ChurnConfig describes one dynamic-churn simulation: a Poisson tenant
// arrival process with exponential lifetimes (optionally interleaved
// with elastic tier resizes), dispatched across a sharded cluster
// through the public guarantee.Service. Equal configs (including Seed)
// give byte-identical results at any Workers value.
type ChurnConfig struct {
	// Spec is the per-shard datacenter topology.
	Spec topology.Spec
	// NewPlacer constructs the algorithm under test on each shard's tree.
	NewPlacer func(*topology.Tree) place.Placer
	// ModelFor selects the bandwidth abstraction used for admission and
	// reservation (TAG, VOC, pipe). Nil means the TAG itself.
	ModelFor func(*tag.Graph) place.Model
	// Pool is the tenant template pool; arrivals sample it uniformly.
	Pool []*tag.Graph
	// Shards is the number of independent datacenter trees (at least 1).
	Shards int
	// Planners selects the per-shard admission path: 0 uses the locked
	// place.Admitter; >= 1 uses the optimistic two-phase
	// place.OptimisticAdmitter with that many planner replicas per
	// shard. The event loop is serial either way, so results remain a
	// deterministic function of the config — and with Planners == 1
	// they are byte-identical to the locked path's.
	Planners int
	// Policy names the dispatch policy: "rr", "least", or "p2c"
	// (see cluster.NewPolicy). Empty means "rr".
	Policy string
	// Arrivals is the number of tenant arrival events to simulate.
	Arrivals int
	// Load is the target fleet-wide slot load in (0,1]; the arrival
	// rate is derived from it exactly as in Run, scaled by the summed
	// slot capacity of all shards.
	Load float64
	// MeanDwell is the mean tenant lifetime Td (simulated time units);
	// zero or negative means 1.
	MeanDwell float64
	// ResizeProb, when positive, interleaves elastic scaling with the
	// churn: after each arrival, with this probability a uniformly
	// chosen live tenant grows or shrinks one uniformly chosen tier by
	// a factor drawn from {0.5, 1.5, 2} through Grant.Resize. Zero (the
	// default) draws nothing from the RNG, so adding resize support
	// does not perturb resize-free workloads.
	ResizeProb float64
	// Enforce attaches the enforcement dataplane to the service and
	// interleaves work-conserving GP/RA control periods with the churn:
	// every EnforceEvery arrivals, each live tenant draws a fresh
	// demand matrix and the fleet's rates are converged. Demands come
	// from a dedicated RNG derived from Seed (like the policy RNG), so
	// attaching enforcement never perturbs the admission workload —
	// the same churn trace runs with and without it. Requires
	// TAG-native pricing (ModelFor nil).
	Enforce bool
	// EnforceEvery is the control-period cadence in arrivals; 0 means
	// 16.
	EnforceEvery int
	// EnforceAlpha is the rate limiters' per-period convergence step in
	// (0,1]; 0 means 1.
	EnforceAlpha float64
	// EnforceFullRecompute disables the dataplane's incremental
	// (component-dirty) stepping, re-solving every component each
	// control period. Results are byte-identical either way — the flag
	// exists for the differential tests proving that.
	EnforceFullRecompute bool
	// HA is applied to every arriving tenant (zero value: none).
	HA place.HASpec
	// Seed drives all randomness: arrival spacing, pool sampling,
	// lifetimes, resize picks, and the p2c policy's sampling.
	Seed int64
	// Workers bounds the goroutines used for shard construction and the
	// final drain. It never changes results: the event loop itself is
	// serial, because every dispatch decision reads the shard loads the
	// previous decisions produced.
	Workers int
}

// ChurnShardStats is one shard's slice of a churn simulation.
type ChurnShardStats struct {
	// Admitted and Rejected are the shard's admission counters;
	// failover attempts count as rejections on each shard that refused.
	Admitted, Rejected int
	// Resized counts successful in-place tenant resizes on the shard.
	Resized int
	// LiveTenants is the shard's tenant count when the last arrival was
	// processed (before the final drain).
	LiveTenants int
	// ReservedGbps is the bandwidth those tenants held, summed over all
	// uplinks and both directions.
	ReservedGbps float64
	// Utilization is the time-averaged fraction of the shard's VM slots
	// occupied over the simulated duration — the steady-state occupancy
	// the dispatch policy achieved on this shard.
	Utilization float64
}

// ChurnResult aggregates a churn simulation's outcome. All fields are
// deterministic functions of the ChurnConfig: durations are simulated
// time, not wall clock.
type ChurnResult struct {
	// Placer and Policy identify the placement algorithm and dispatch
	// policy under test.
	Placer, Policy string
	// Shards is the fleet size.
	Shards int

	// Arrivals counts tenant arrival events; Admitted and Rejected
	// partition them (Rejected means every shard refused).
	Arrivals, Admitted, Rejected int
	// Departures counts tenants that left before the end of the run.
	Departures int
	// Resized and ResizeRejected partition the elastic-scaling events
	// (both zero when ResizeProb is zero): Resized counts committed
	// in-place resizes, ResizeRejected ones the fleet could not host.
	Resized, ResizeRejected int
	// Failovers counts placement attempts beyond each request's first
	// shard — how often the policy's first pick was wrong.
	Failovers int64

	// Duration is the simulated time spanned by the arrival process.
	Duration float64
	// AdmissionRate is the sustained admission rate: Admitted/Duration,
	// in tenants per simulated time unit.
	AdmissionRate float64
	// RejectionRatio is Rejected/Arrivals.
	RejectionRatio float64
	// Utilization is the fleet-wide time-averaged slot occupancy.
	Utilization float64

	// PerShard holds each shard's slice, indexed by shard ID.
	PerShard []ChurnShardStats

	// Enforcement reports the interleaved control periods' outcome; nil
	// unless the config set Enforce.
	Enforcement *ChurnEnforcement
}

// policySeed derives the dispatch-policy seed from a config seed. One
// shared derivation keeps Churn and ShardedThroughput comparable (p2c
// draws the same pick sequence for the same config seed), while
// decoupling the policy RNG from the workload RNG so adding policy
// randomness never perturbs the arrival sequence.
func policySeed(seed int64) int64 { return seed ^ 0x5DEECE66D }

// enforceSeed derives the enforcement-demand seed from a config seed,
// decoupling the demand RNG from the workload RNG so attaching
// enforcement never perturbs the admission trace.
func enforceSeed(seed int64) int64 { return seed ^ 0x6D2B79F5 }

// churnTenant is one live tenant of a churn run: its grant, its
// current TAG (updated by resizes), its index in the live slice
// (for O(1) swap-removal on departure), and its cached enforcement
// demand plan (nil until first used; invalidated by resizes).
type churnTenant struct {
	grant guarantee.Grant
	graph *tag.Graph
	idx   int
	plan  *demandPlan
}

// churnDeparture is a scheduled tenant exit from a churn run. seq
// breaks simulated-time ties deterministically (insertion order).
type churnDeparture struct {
	at  float64
	seq int
	ten *churnTenant
}

type churnQueue []churnDeparture

func (q churnQueue) Len() int { return len(q) }
func (q churnQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q churnQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *churnQueue) Push(x any)   { *q = append(*q, x.(churnDeparture)) }
func (q *churnQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Churn runs a dynamic-churn simulation: cfg.Arrivals Poisson tenant
// arrivals with exponential lifetimes, each dispatched across
// cfg.Shards independent trees by the named policy, with failover
// through the remaining shards when the first pick rejects. With
// cfg.ResizeProb > 0, live tenants additionally grow and shrink tiers
// in place through the guarantee API's Resize.
//
// The event loop is serial and fully deterministic: equal configs give
// byte-identical results at any cfg.Workers value, which only bounds
// the goroutines building shards up front and draining live tenants at
// the end. Unlike Throughput this is a results artifact, not a
// performance measurement — nothing in the output depends on wall
// clock or scheduling.
func Churn(cfg ChurnConfig) (*ChurnResult, error) {
	if len(cfg.Pool) == 0 {
		return nil, errors.New("sim: empty tenant pool")
	}
	if cfg.Arrivals <= 0 {
		return nil, errors.New("sim: Arrivals must be positive")
	}
	if cfg.Shards <= 0 {
		return nil, errors.New("sim: Shards must be positive")
	}
	if cfg.ResizeProb > 0 && cfg.ModelFor != nil {
		// Resize requires TAG-native pricing: tenants admitted under a
		// translated model (VOC, pipes) reject Resize with Unsupported,
		// which would abort the run at the first resize event. Fail
		// before any work is done instead.
		return nil, errors.New("sim: ResizeProb requires TAG-native pricing (ModelFor must be nil)")
	}
	if cfg.Enforce && cfg.ModelFor != nil {
		// The dataplane enforces TAG guarantees; tenants priced under a
		// translated model would all be skipped, making the run
		// meaningless. Fail up front instead.
		return nil, errors.New("sim: Enforce requires TAG-native pricing (ModelFor must be nil)")
	}
	opts := []guarantee.Option{
		guarantee.WithPlacer(cfg.NewPlacer),
		guarantee.WithModelFor(cfg.ModelFor),
		guarantee.WithShards(cfg.Shards),
		guarantee.WithPlanners(cfg.Planners),
		guarantee.WithPolicy(cfg.Policy),
		guarantee.WithSeed(policySeed(cfg.Seed)),
		guarantee.WithWorkers(cfg.Workers),
	}
	if cfg.Enforce {
		opts = append(opts, guarantee.WithEnforcement(guarantee.EnforcementConfig{
			Alpha:         cfg.EnforceAlpha,
			FullRecompute: cfg.EnforceFullRecompute,
		}))
	}
	svc, err := guarantee.New(cfg.Spec, opts...)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()

	// Arrival rate from the load formula, over the whole fleet's slots.
	meanDwell := cfg.MeanDwell
	if meanDwell <= 0 {
		meanDwell = 1
	}
	var meanSize float64
	for _, g := range cfg.Pool {
		meanSize += float64(g.VMs())
	}
	meanSize /= float64(len(cfg.Pool))
	var totalSlots float64
	loads := svc.Loads()
	for _, ld := range loads {
		totalSlots += float64(ld.SlotsTotal)
	}
	load := cfg.Load
	if load <= 0 {
		load = 1
	}
	lambda := load * totalSlots / (meanSize * meanDwell)

	r := rand.New(rand.NewSource(cfg.Seed))
	res := &ChurnResult{
		Placer:   svc.Name(),
		Policy:   svc.Policy(),
		Shards:   svc.Shards(),
		PerShard: make([]ChurnShardStats, svc.Shards()),
	}
	enforceEvery := cfg.EnforceEvery
	if enforceEvery <= 0 {
		enforceEvery = 16
	}
	var enforceRand *rand.Rand
	if cfg.Enforce {
		res.Enforcement = &ChurnEnforcement{MinRatio: 1}
		// A dedicated demand RNG, decoupled from the workload RNG the
		// same way the policy RNG is: attaching enforcement must not
		// perturb the admission trace.
		enforceRand = rand.New(rand.NewSource(enforceSeed(cfg.Seed)))
	}

	var (
		clock      float64
		departures churnQueue
		live       []*churnTenant
		seq        int
		// slotSeconds[s] integrates shard s's occupied slots over
		// simulated time, for the steady-state utilization report.
		slotSeconds = make([]float64, svc.Shards())
	)
	heap.Init(&departures)
	advance := func(to float64) {
		dt := to - clock
		for i, ld := range svc.Loads() {
			slotSeconds[i] += float64(ld.SlotsUsed) * dt
		}
		clock = to
	}
	unlive := func(ten *churnTenant) {
		last := len(live) - 1
		live[ten.idx] = live[last]
		live[ten.idx].idx = ten.idx
		live = live[:last]
	}

	for i := 0; i < cfg.Arrivals; i++ {
		next := clock + r.ExpFloat64()/lambda
		for len(departures) > 0 && departures[0].at <= next {
			d := heap.Pop(&departures).(churnDeparture)
			advance(d.at)
			d.ten.grant.Release()
			unlive(d.ten)
			res.Departures++
		}
		advance(next)

		g := cfg.Pool[r.Intn(len(cfg.Pool))]
		req := guarantee.Request{ID: int64(i), Graph: g, HA: cfg.HA}
		res.Arrivals++
		grant, err := svc.Admit(ctx, req)
		if err != nil {
			if !errors.Is(err, place.ErrRejected) {
				return nil, fmt.Errorf("sim: churn placement error: %w", err)
			}
			res.Rejected++
		} else {
			res.Admitted++
			seq++
			ten := &churnTenant{grant: grant, graph: g, idx: len(live)}
			live = append(live, ten)
			heap.Push(&departures, churnDeparture{clock + r.ExpFloat64()*meanDwell, seq, ten})
		}

		// Elastic scaling: with probability ResizeProb, one live tenant
		// changes one tier's size in place. Every draw below is from
		// the single workload RNG, so the event sequence — and through
		// it every admission decision — stays a pure function of the
		// config.
		if cfg.ResizeProb > 0 && len(live) > 0 && r.Float64() < cfg.ResizeProb {
			ten := live[r.Intn(len(live))]
			var resizable []int
			for t := 0; t < ten.graph.Tiers(); t++ {
				if !ten.graph.Tier(t).External {
					resizable = append(resizable, t)
				}
			}
			if len(resizable) > 0 {
				t := resizable[r.Intn(len(resizable))]
				factor := []float64{0.5, 1.5, 2}[r.Intn(3)]
				n := ten.graph.TierSize(t)
				newN := int(float64(n) * factor)
				if newN < 1 {
					newN = 1
				}
				if newN == n {
					newN = n + 1
				}
				ng, gerr := ten.graph.WithTierSize(t, newN)
				if gerr != nil {
					return nil, fmt.Errorf("sim: churn resize graph: %w", gerr)
				}
				if err := ten.grant.Resize(ctx, ng); err != nil {
					if !errors.Is(err, place.ErrRejected) {
						return nil, fmt.Errorf("sim: churn resize error: %w", err)
					}
					res.ResizeRejected++
				} else {
					ten.graph = ng
					ten.plan = nil // VM set changed; demand plan is stale
					res.Resized++
				}
			}
		}

		// Enforcement: every enforceEvery arrivals, the live tenants
		// draw fresh demand matrices and the dataplane converges their
		// work-conserving rates. Serial, like the rest of the loop, so
		// the outcome stays a pure function of the config.
		if cfg.Enforce && (i+1)%enforceEvery == 0 && len(live) > 0 {
			if err := controlPeriod(enforceRand, svc.Enforcement(), live, res.Enforcement); err != nil {
				return nil, err
			}
		}
	}

	res.Duration = clock
	stats := svc.Stats()
	res.Failovers = stats.Failovers
	loads = svc.Loads()
	for i, st := range stats.PerShard {
		ld := loads[i]
		res.PerShard[i] = ChurnShardStats{
			Admitted:     int(st.Admitted),
			Rejected:     int(st.Rejected),
			Resized:      int(st.Resized),
			LiveTenants:  ld.Tenants,
			ReservedGbps: ld.ReservedMbps / 1000,
		}
		if clock > 0 {
			res.PerShard[i].Utilization = slotSeconds[i] / (float64(ld.SlotsTotal) * clock)
		}
	}
	if clock > 0 {
		res.AdmissionRate = float64(res.Admitted) / clock
		var ss float64
		for _, v := range slotSeconds {
			ss += v
		}
		res.Utilization = ss / (totalSlots * clock)
	}
	if res.Arrivals > 0 {
		res.RejectionRatio = float64(res.Rejected) / float64(res.Arrivals)
	}

	// Drain the fleet: shards are independent, so releasing each
	// shard's survivors is embarrassingly parallel and cannot affect
	// the already-assembled result.
	remaining := make([][]*churnTenant, svc.Shards())
	for len(departures) > 0 {
		d := heap.Pop(&departures).(churnDeparture)
		id := d.ten.grant.Shard()
		remaining[id] = append(remaining[id], d.ten)
	}
	if err := parallel.ForEach(cfg.Workers, len(remaining), func(i int) error {
		for _, ten := range remaining[i] {
			ten.grant.Release()
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if cfg.Enforce {
		// After the drain every lifecycle event has reached the
		// dataplane; the counters are the incremental-update audit
		// trail the enforcement tests assert on.
		res.Enforcement.Events = svc.Enforcement().Counters()
	}
	return res, nil
}
